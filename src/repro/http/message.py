"""HTTP/1.0-flavoured wire format.

One request and one response per transport frame (the framing the
underlying transport already provides plays the role of Content-Length
enforcement on a raw socket; Content-Length is still emitted and checked
for fidelity).  Bodies are binary (the jser codec's output); CQoS piggyback
entries travel as ``X-CQoS-<key>`` headers encoded by the invocation
kernel's shared :class:`~repro.core.platform.PiggybackCodec` (hex-encoded
jser values; non-token keys escaped the same way), so arbitrary piggyback
keys *and* values survive header transport losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.platform import PIGGYBACK_CODEC
from repro.util.errors import MarshalError

_CRLF = b"\r\n"
_VERSION = b"HTTP/1.0"

PIGGYBACK_PREFIX = PIGGYBACK_CODEC.PREFIX

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    500: "Internal Server Error",
    502: "Bad Gateway",
}


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def piggyback(self) -> dict:
        """Decode the ``X-CQoS-*`` headers back into a piggyback dict."""
        return PIGGYBACK_CODEC.decode_headers(self.headers)


@dataclass
class HttpResponse:
    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def reason(self) -> str:
        return STATUS_REASONS.get(self.status, "Unknown")


def piggyback_headers(piggyback: dict) -> dict[str, str]:
    """Encode a piggyback dict as ``X-CQoS-*`` headers."""
    return PIGGYBACK_CODEC.encode_headers(piggyback)


def _format_headers(headers: dict[str, str], body: bytes) -> bytes:
    lines = [f"{name}: {value}".encode("latin-1") for name, value in headers.items()]
    lines.append(b"content-length: %d" % len(body))
    return _CRLF.join(lines)


def _parse_headers(block: bytes) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in block.split(_CRLF):
        if not line:
            continue
        name, sep, value = line.partition(b":")
        if not sep:
            raise MarshalError(f"malformed HTTP header line: {line!r}")
        headers[name.decode("latin-1").strip().lower()] = value.decode("latin-1").strip()
    return headers


def format_request(request: HttpRequest) -> bytes:
    start = f"{request.method} {request.path} ".encode("latin-1") + _VERSION
    return (
        start + _CRLF + _format_headers(request.headers, request.body)
        + _CRLF + _CRLF + request.body
    )


def format_response(response: HttpResponse) -> bytes:
    start = _VERSION + f" {response.status} {response.reason}".encode("latin-1")
    return (
        start + _CRLF + _format_headers(response.headers, response.body)
        + _CRLF + _CRLF + response.body
    )


def _split(frame: bytes) -> tuple[bytes, dict[str, str], bytes]:
    head, sep, body = frame.partition(_CRLF + _CRLF)
    if not sep:
        raise MarshalError("HTTP frame lacks header terminator")
    start_line, _, header_block = head.partition(_CRLF)
    headers = _parse_headers(header_block)
    declared = headers.get("content-length")
    if declared is not None and int(declared) != len(body):
        raise MarshalError(
            f"content-length mismatch: declared {declared}, got {len(body)}"
        )
    return start_line, headers, body


def parse_request(frame: bytes) -> HttpRequest:
    start_line, headers, body = _split(frame)
    parts = start_line.split(b" ")
    if len(parts) != 3 or parts[2] != _VERSION:
        raise MarshalError(f"malformed HTTP request line: {start_line!r}")
    return HttpRequest(
        method=parts[0].decode("latin-1"),
        path=parts[1].decode("latin-1"),
        headers=headers,
        body=body,
    )


def parse_response(frame: bytes) -> HttpResponse:
    start_line, headers, body = _split(frame)
    parts = start_line.split(b" ", 2)
    if len(parts) < 2 or parts[0] != _VERSION:
        raise MarshalError(f"malformed HTTP status line: {start_line!r}")
    return HttpResponse(status=int(parts[1]), headers=headers, body=body)
