"""HTTP client for object invocations."""

from __future__ import annotations

from typing import Any

from repro.http.message import (
    HttpRequest,
    format_request,
    parse_response,
    piggyback_headers,
)
from repro.net.pool import ConnectionPool
from repro.net.transport import Connection, Network
from repro.serialization.jser import jser_dumps, jser_loads
from repro.util.errors import CommunicationError, InvocationError, rehydrate_system_error


class HttpClient:
    """Invoke operations on objects served by :class:`HttpObjectServer`.

    Connections are pooled per endpoint address (bounded LRU) and re-opened
    on failure.
    """

    def __init__(self, network: Network, host_name: str):
        self._network = network
        self.host_name = host_name
        self._host = network.host(host_name)
        self._pool = ConnectionPool(self._host)

    def _connection(self, address: str) -> Connection:
        return self._pool.get(address)

    def drop_connection(self, address: str, connection: Connection | None = None) -> None:
        self._pool.drop(address, connection)

    def post(
        self,
        address: str,
        object_id: str,
        operation: str,
        arguments: list,
        piggyback: dict | None = None,
        timeout: float | None = None,
    ) -> Any:
        """``POST /objects/<id>/<operation>``; return the decoded reply.

        Application exceptions (400 + marshalled exception) re-raise as the
        original exception instance; other failures raise
        :class:`InvocationError`.
        """
        request = HttpRequest(
            method="POST",
            path=f"/objects/{object_id}/{operation}",
            headers=piggyback_headers(piggyback or {}),
            body=jser_dumps(arguments),
        )
        connection = self._connection(address)
        try:
            frame = connection.call(format_request(request), timeout=timeout)
        except CommunicationError:
            self.drop_connection(address, connection)
            raise
        return self._decode_response(frame)

    def post_async(
        self,
        address: str,
        object_id: str,
        operation: str,
        arguments: list,
        piggyback: dict | None = None,
        timeout: float | None = None,
    ):
        """Non-blocking :meth:`post`; returns a ReplyFuture of the value.

        Formatted eagerly with the same request builder (wire bytes
        identical to the blocking path); response parsing runs lazily on
        the consumer's thread.  Never raises — submit-time failures settle
        the future.
        """
        request = HttpRequest(
            method="POST",
            path=f"/objects/{object_id}/{operation}",
            headers=piggyback_headers(piggyback or {}),
            body=jser_dumps(arguments),
        )
        frame = format_request(request)
        try:
            connection = self._connection(address)
        except Exception as exc:  # noqa: BLE001 - delivered via the future
            from repro.net.transport import ReplyFuture

            return ReplyFuture.failed(exc)

        def on_error(exc: BaseException):
            if isinstance(exc, CommunicationError):
                self.drop_connection(address, connection)
            raise exc

        return connection.call_async(frame, timeout=timeout).then(
            self._decode_response, on_error
        )

    def _decode_response(self, frame: bytes) -> Any:
        """Parse a raw HTTP response frame; map the error taxonomy."""
        response = parse_response(frame)
        if response.status == 200:
            return jser_loads(response.body) if response.body else None
        body = jser_loads(response.body) if response.body else None
        if isinstance(body, BaseException):
            raise body
        if isinstance(body, dict):
            raise rehydrate_system_error(
                body.get("type", "HttpError"), body.get("message", "")
            )
        raise InvocationError("HttpError", f"status {response.status}")

    def close(self) -> None:
        self._pool.close()


class HttpStub:
    """Base class for generated plain HTTP stubs (no CQoS)."""

    def __init__(self, client: HttpClient, address: str, object_id: str):
        self._client = client
        self._address = address
        self._object_id = object_id


def _make_method(name: str, arity: int):
    def method(self, *args):
        if len(args) != arity:
            raise TypeError(f"{name}() takes {arity} arguments, got {len(args)}")
        return self._client.post(self._address, self._object_id, name, list(args))

    method.__name__ = name
    method.__doc__ = f"HTTP-mapped operation {name!r}."
    return method


def make_http_stub_class(interface) -> type:
    """Generate a typed HTTP stub class for an IDL interface."""
    namespace = {
        "__doc__": f"HTTP stub for interface {interface.name}.",
        "__idl_interface__": interface,
    }
    for operation in interface.operations.values():
        namespace[operation.name] = _make_method(operation.name, len(operation.params))
    return type(f"{interface.simple_name}HttpStub", (HttpStub,), namespace)
