"""An HTTP-like platform: the paper's generality claim, made executable.

"For example, it would be feasible to intercept HTTP requests and replies,
in which case the TCP socket layer would be viewed as the middleware
layer."  (paper, section 2.1)

This package is that third platform: a minimal HTTP/1.0-flavoured
request/reply protocol over the :mod:`repro.net` transports —

- :mod:`repro.http.message` — wire format: request line
  (``POST /objects/<id>/<operation> HTTP/1.0``), headers, binary body;
  piggyback data travels as ``X-CQoS-*`` headers;
- :mod:`repro.http.server` — an object server mapping paths to servants
  (typed dispatch via interface metadata, or generic handlers);
- :mod:`repro.http.client` — a small client with per-host connections;
- :mod:`repro.http.registry` — a path registry at a well-known host (the
  reverse-proxy-configuration analog) used for replica discovery.

The CQoS adapter for it lives in :mod:`repro.core.adapters.http`; because
the Cactus protocols only see the abstract interfaces, *every* QoS
micro-protocol works on HTTP unchanged — which is the point.
"""

from repro.http.message import HttpRequest, HttpResponse, format_request, format_response, parse_request, parse_response
from repro.http.server import HttpObjectServer
from repro.http.client import HttpClient
from repro.http.registry import HttpRegistry, HttpRegistryClient, start_http_registry

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "format_request",
    "format_response",
    "parse_request",
    "parse_response",
    "HttpObjectServer",
    "HttpClient",
    "HttpRegistry",
    "HttpRegistryClient",
    "start_http_registry",
]
