"""Path registry for the HTTP platform (reverse-proxy-configuration analog).

Maps names to ``(endpoint_address, object_id)`` pairs, itself served as a
generic object at a well-known location (host ``"http-registry"``, object
``"registry"``), so the same HTTP machinery bootstraps discovery — as the
naming service does for the ORB and the registry for RMI.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.http.client import HttpClient
from repro.http.server import HttpObjectServer, SERVICE
from repro.util.errors import BindError

REGISTRY_HOST = "http-registry"
REGISTRY_OBJECT_ID = "registry"


class HttpRegistry:
    """The registry servant (generic invoke)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._table: dict[str, tuple[str, str]] = {}  # name -> (address, object_id)

    def invoke(self, method: str, arguments: list, context: dict) -> Any:
        handler = getattr(self, f"do_{method}", None)
        if handler is None:
            raise BindError(f"http registry has no operation {method!r}")
        return handler(*arguments)

    def do_bind(self, name: str, address: str, object_id: str) -> None:
        with self._lock:
            if name in self._table:
                raise BindError(f"name already bound: {name!r}")
            self._table[name] = (address, object_id)

    def do_rebind(self, name: str, address: str, object_id: str) -> None:
        with self._lock:
            self._table[name] = (address, object_id)

    def do_lookup(self, name: str) -> list:
        with self._lock:
            entry = self._table.get(name)
        if entry is None:
            raise BindError(f"name not bound: {name!r}")
        return list(entry)

    def do_unbind(self, name: str) -> None:
        with self._lock:
            if name not in self._table:
                raise BindError(f"name not bound: {name!r}")
            del self._table[name]

    def do_list(self, prefix: str) -> list[str]:
        with self._lock:
            return sorted(name for name in self._table if name.startswith(prefix))


def start_http_registry(server: HttpObjectServer) -> HttpRegistry:
    """Mount a registry on ``server`` (which should live on REGISTRY_HOST)."""
    registry = HttpRegistry()
    server.mount_generic(REGISTRY_OBJECT_ID, registry)
    return registry


class HttpRegistryClient:
    """Client wrapper over the registry's generic interface."""

    def __init__(
        self,
        client: HttpClient,
        registry_host: str = REGISTRY_HOST,
    ):
        self._client = client
        self._address = f"{registry_host}/{SERVICE}"

    def bind(self, name: str, address: str, object_id: str) -> None:
        self._client.post(self._address, REGISTRY_OBJECT_ID, "bind", [name, address, object_id])

    def rebind(self, name: str, address: str, object_id: str) -> None:
        self._client.post(self._address, REGISTRY_OBJECT_ID, "rebind", [name, address, object_id])

    def lookup(self, name: str) -> tuple[str, str]:
        address, object_id = self._client.post(self._address, REGISTRY_OBJECT_ID, "lookup", [name])
        return address, object_id

    def unbind(self, name: str) -> None:
        self._client.post(self._address, REGISTRY_OBJECT_ID, "unbind", [name])

    def list(self, prefix: str = "") -> list[str]:
        return list(self._client.post(self._address, REGISTRY_OBJECT_ID, "list", [prefix]))
