"""Engine-aware reuse of CDR output streams: explicit acquire/release.

PR 2 cached one reusable :class:`~repro.serialization.cdr.CdrOutputStream`
per thread (``threading.local``) for the GIOP encoders.  That scheme bakes
in the assumption *one marshal in flight per thread* — true for the
threaded engine, false on an event loop, where one loop thread interleaves
many logical requests and a buffer held across a suspension point would be
shared by two marshals (the regression test in
``tests/unit/test_stream_reuse.py`` demonstrates the interleaving under
``asyncio.gather``).

The replacement is a free list with explicit checkout:

- :func:`acquire_output_stream` pops a reset stream (or allocates one);
- :func:`release_output_stream` returns it once the caller has copied the
  encoded bytes out.

Each marshal owns its stream for exactly the acquire→release window, no
matter which thread, task, or loop callback runs it — concurrency-model
agnostic where thread-locals were thread-specific.  The pool is a plain
list mutated only by ``append``/``pop``, each a single atomic bytecode
under the GIL, so the hot path takes no lock.  Forgetting to release never
corrupts anything (the stream is just garbage-collected); releasing is
purely what makes reuse effective.
"""

from __future__ import annotations

from repro.serialization.cdr import CdrOutputStream

#: Upper bound on retained idle streams: enough for every servant-executor
#: worker and benchmark client to hold one, without pinning unbounded
#: buffers after a concurrency spike.
_MAX_POOLED = 32

_pool: list[CdrOutputStream] = []


def acquire_output_stream() -> CdrOutputStream:
    """Check out a reset output stream; pair with :func:`release_output_stream`."""
    try:
        out = _pool.pop()
    except IndexError:
        return CdrOutputStream()
    out.reset()
    return out


def release_output_stream(out: CdrOutputStream) -> None:
    """Return a stream to the free list once its bytes have been copied out.

    The caller must not touch ``out`` (or any view of its buffer) after
    releasing: the next acquirer will reset and overwrite it.
    """
    if len(_pool) < _MAX_POOLED:
        _pool.append(out)


def pooled_stream_count() -> int:
    """Current free-list size (observability for tests)."""
    return len(_pool)
