"""Registry of application value types that may cross the wire.

Both codecs can carry instances of *registered* classes: a class registers
under a stable type name together with functions that convert an instance to
and from a plain dict of codec-supported values.  This mirrors CORBA
valuetypes / Java ``Serializable`` without resorting to pickle (which would
execute arbitrary reduction code on receipt).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Type

from repro.util.errors import MarshalError

ToDict = Callable[[Any], dict]
FromDict = Callable[[dict], Any]


class TypeRegistry:
    """Maps stable type names to (class, to_dict, from_dict) triples."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_name: dict[str, tuple[type, ToDict, FromDict]] = {}
        self._by_class: dict[type, str] = {}

    def register(
        self,
        name: str,
        cls: type,
        to_dict: ToDict | None = None,
        from_dict: FromDict | None = None,
    ) -> None:
        """Register ``cls`` under ``name``.

        When the conversion functions are omitted the instance ``__dict__``
        is used directly and reconstruction bypasses ``__init__`` — adequate
        for simple data-carrier classes.
        """
        if to_dict is None:
            to_dict = lambda obj: dict(vars(obj))  # noqa: E731
        if from_dict is None:

            def from_dict(state: dict, _cls: type = cls) -> Any:
                obj = _cls.__new__(_cls)
                obj.__dict__.update(state)
                return obj

        with self._lock:
            # Re-registration replaces the previous binding.  IDL is often
            # recompiled within one process (each test compiles its own
            # CompiledIdl); the latest generated class wins for decoding.
            previous = self._by_name.get(name)
            if previous is not None:
                self._by_class.pop(previous[0], None)
            self._by_name[name] = (cls, to_dict, from_dict)
            self._by_class[cls] = name

    def name_for(self, obj: Any) -> str | None:
        """Return the registered name for ``obj``'s class, or None."""
        with self._lock:
            return self._by_class.get(type(obj))

    def encode(self, obj: Any) -> tuple[str, dict]:
        """Return (type_name, state_dict) for a registered instance."""
        name = self.name_for(obj)
        if name is None:
            raise MarshalError(f"unregistered value type: {type(obj).__name__}")
        with self._lock:
            _, to_dict, _ = self._by_name[name]
        state = to_dict(obj)
        if not isinstance(state, dict):
            raise MarshalError(f"to_dict for {name!r} must return a dict")
        return name, state

    def decode(self, name: str, state: dict) -> Any:
        """Reconstruct an instance of the type registered under ``name``."""
        with self._lock:
            entry = self._by_name.get(name)
        if entry is None:
            raise MarshalError(f"unknown value type on the wire: {name!r}")
        _, _, from_dict = entry
        return from_dict(state)


global_registry = TypeRegistry()


def value_type(name: str, registry: TypeRegistry | None = None):
    """Class decorator registering a simple data class as a wire value type.

    >>> @value_type("examples.Point")
    ... class Point:
    ...     def __init__(self, x, y):
    ...         self.x, self.y = x, y
    """

    def decorate(cls: type) -> type:
        (registry or global_registry).register(name, cls)
        return cls

    return decorate
