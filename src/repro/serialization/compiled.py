"""Per-signature compiled marshalling plans (the IDL-compiler fast path).

:mod:`repro.orb.typed_marshal` walks the IDL type tree per *value*: every
write re-runs an ``isinstance`` ladder over the type model and re-resolves
named types through the compiled-IDL tables.  Real IDL compilers do that
walk once, at stub generation time, and emit flat marshalling code.  This
module is that step for the Python reproduction:

- :class:`SignaturePlan` compiles an ordered list of IDL types (an
  operation's parameter list, or its result) into a *flat list of pre-bound
  ops*.  A leading run of fixed-width primitives — alignment resolved
  statically, since a typed CDR body always starts at offset 0 — collapses
  into a single pre-built :class:`struct.Struct` pack/unpack (with explicit
  pad bytes), so a primitives-only signature marshals in one call.
- Types after the first variable-length field (strings, sequences, ``any``,
  structs) are compiled to closures with all name resolution, member lists,
  and method binding done once; runtime alignment is handled by the stream
  as before.
- ``any`` falls back to the tagged :meth:`~repro.serialization.cdr.CdrOutputStream.write_any`
  encoding — the dynamic DII/DSI route is untouched.

The wire format is byte-identical to :func:`repro.orb.typed_marshal.write_typed`
(the plan for ``unsigned long long`` packs a big-endian ``Q`` at 4-byte
alignment, exactly the two consecutive ``ulong`` writes of the tree walk),
so compiled and tree-walking peers interoperate freely.

Validation matches the tree walk too: a bad value raises
:class:`~repro.util.errors.MarshalError` at the sender with nothing written.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from repro.idl.ast import BasicType, IdlType, NamedType, SequenceType
from repro.serialization.cdr import CdrInputStream, CdrOutputStream
from repro.util.errors import MarshalError

# kind -> (struct code, CDR alignment, size). ``unsigned long long`` is two
# adjacent big-endian ulongs on the wire == one 'Q' at 4-byte alignment;
# IDL float widens to double, as in the tree walk.
_FIXED: dict[str, tuple[str, int, int]] = {
    "boolean": ("?", 1, 1),
    "octet": ("B", 1, 1),
    "short": ("h", 2, 2),
    "unsigned short": ("H", 2, 2),
    "long": ("i", 4, 4),
    "unsigned long": ("I", 4, 4),
    "long long": ("q", 8, 8),
    "unsigned long long": ("Q", 4, 8),
    "float": ("d", 8, 8),
    "double": ("d", 8, 8),
}

_INT_RANGES = {
    "octet": (0, 255),
    "short": (-(2**15), 2**15 - 1),
    "unsigned short": (0, 2**16 - 1),
    "long": (-(2**31), 2**31 - 1),
    "unsigned long": (0, 2**32 - 1),
    "long long": (-(2**63), 2**63 - 1),
    "unsigned long long": (0, 2**64 - 1),
}


def _validator(kind: str) -> Callable[[Any], None]:
    """Build the per-kind value check matching ``write_typed`` semantics."""
    if kind == "boolean":

        def check_bool(value: Any) -> None:
            if not isinstance(value, bool):
                raise MarshalError(f"boolean expected, got {value!r}")

        return check_bool
    if kind in ("float", "double"):

        def check_float(value: Any) -> None:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise MarshalError(f"{kind} expected, got {value!r}")

        return check_float
    low, high = _INT_RANGES[kind]

    def check_int(value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise MarshalError(f"{kind} expected, got {value!r}")
        if not low <= value <= high:
            raise MarshalError(f"{kind} out of range: {value}")

    return check_int


def _coerce(kind: str) -> Callable[[Any], Any] | None:
    """Post-validation coercion applied before packing (float widening)."""
    if kind in ("float", "double"):
        return float
    return None


# -- dynamic (closure-compiled) writers and readers ---------------------------


def compile_writer(idl_type: IdlType, compiled) -> Callable[[Any, Any], None]:
    """Compile ``idl_type`` to a ``writer(out, value)`` closure.

    All type-model dispatch, named-type resolution, and member enumeration
    happens here, once; the returned closure only does value checks and
    stream writes.  ``compiled`` is the compiled-IDL table object (duck
    typed: ``structs`` / ``exceptions`` dicts).
    """
    if isinstance(idl_type, BasicType):
        kind = idl_type.kind
        if kind == "void":

            def write_void(out: Any, value: Any) -> None:
                if value is not None:
                    raise MarshalError(f"void value must be None, got {value!r}")

            return write_void
        if kind == "string":

            def write_string(out: Any, value: Any) -> None:
                if not isinstance(value, str):
                    raise MarshalError(f"string expected, got {value!r}")
                out.write_string(value)

            return write_string
        if kind == "any":
            return lambda out, value: out.write_any(value)
        if kind == "unsigned long long":
            check_u64 = _validator(kind)

            def write_u64(out: Any, value: Any) -> None:
                check_u64(value)
                out.write_ulong(value >> 32)
                out.write_ulong(value & 0xFFFFFFFF)

            return write_u64
        if kind in _FIXED:
            check = _validator(kind)
            coerce = _coerce(kind)
            method_name = {
                "boolean": "write_bool",
                "octet": "write_octet",
                "short": "write_short",
                "unsigned short": "write_ushort",
                "long": "write_long",
                "unsigned long": "write_ulong",
                "long long": "write_longlong",
                "float": "write_double",
                "double": "write_double",
            }[kind]

            if coerce is None:

                def write_fixed(out: Any, value: Any) -> None:
                    check(value)
                    getattr(out, method_name)(value)

                return write_fixed

            def write_fixed_coerced(out: Any, value: Any) -> None:
                check(value)
                getattr(out, method_name)(coerce(value))

            return write_fixed_coerced
        raise MarshalError(f"unknown basic type {kind!r}")
    if isinstance(idl_type, SequenceType):
        write_element = compile_writer(idl_type.element, compiled)

        def write_sequence(out: Any, value: Any) -> None:
            if not isinstance(value, (list, tuple)):
                raise MarshalError(f"sequence expected, got {value!r}")
            out.write_ulong(len(value))
            for item in value:
                write_element(out, item)

        return write_sequence
    if isinstance(idl_type, NamedType):
        cls = compiled.structs.get(idl_type.name) or compiled.exceptions.get(idl_type.name)
        if cls is None:
            raise MarshalError(f"unresolved named type {idl_type.name!r}")
        member_types = getattr(cls, "__member_types__", {})
        member_writers = tuple(
            (member, compile_writer(member_types[member], compiled))
            for member in cls.__members__
        )
        type_name = idl_type.name

        def write_struct(out: Any, value: Any) -> None:
            if not isinstance(value, cls):
                raise MarshalError(f"{type_name} instance expected, got {value!r}")
            for member, write_member in member_writers:
                write_member(out, getattr(value, member))

        return write_struct
    raise MarshalError(f"unknown IDL type {idl_type!r}")


def compile_reader(idl_type: IdlType, compiled) -> Callable[[Any], Any]:
    """Compile ``idl_type`` to a ``reader(stream)`` closure."""
    if isinstance(idl_type, BasicType):
        kind = idl_type.kind
        if kind == "void":
            return lambda stream: None
        if kind == "unsigned long long":

            def read_u64(stream: Any) -> int:
                high = stream.read_ulong()
                return (high << 32) | stream.read_ulong()

            return read_u64
        method_name = {
            "boolean": "read_bool",
            "octet": "read_octet",
            "short": "read_short",
            "unsigned short": "read_ushort",
            "long": "read_long",
            "unsigned long": "read_ulong",
            "long long": "read_longlong",
            "float": "read_double",
            "double": "read_double",
            "string": "read_string",
            "any": "read_any",
        }.get(kind)
        if method_name is None:
            raise MarshalError(f"unknown basic type {kind!r}")

        def read_basic(stream: Any, _name: str = method_name) -> Any:
            return getattr(stream, _name)()

        return read_basic
    if isinstance(idl_type, SequenceType):
        read_element = compile_reader(idl_type.element, compiled)

        def read_sequence(stream: Any) -> list:
            return [read_element(stream) for _ in range(stream.read_ulong())]

        return read_sequence
    if isinstance(idl_type, NamedType):
        cls = compiled.structs.get(idl_type.name) or compiled.exceptions.get(idl_type.name)
        if cls is None:
            raise MarshalError(f"unresolved named type {idl_type.name!r}")
        member_types = getattr(cls, "__member_types__", {})
        member_readers = tuple(
            (member, compile_reader(member_types[member], compiled))
            for member in cls.__members__
        )

        def read_struct(stream: Any) -> Any:
            return cls(**{member: read for member, read in
                          ((m, r(stream)) for m, r in member_readers)})

        return read_struct
    raise MarshalError(f"unknown IDL type {idl_type!r}")


# -- signature plans -----------------------------------------------------------


class SignaturePlan:
    """Compiled marshalling plan for an ordered list of IDL types.

    Splits the signature at the first variable-length type: the fixed-width
    prefix becomes one pre-built :class:`struct.Struct` (``head``), the rest
    become pre-compiled closures (``tail``).  ``void`` entries occupy no
    wire space but keep their position (value must be None)."""

    __slots__ = (
        "_head_struct",
        "_head_checks",
        "_head_size",
        "_head_count",
        "_tail_writers",
        "_tail_readers",
        "_arity",
        "_void_positions",
        "all_fixed",
    )

    def __init__(self, types: list[IdlType] | tuple[IdlType, ...], compiled):
        head_fmt: list[str] = []
        head_checks: list[Callable[[Any], None]] = []
        void_positions: set[int] = set()
        offset = 0
        index = 0
        for index, idl_type in enumerate(types):
            if isinstance(idl_type, BasicType) and idl_type.kind == "void":
                void_positions.add(index)
                continue
            if not (isinstance(idl_type, BasicType) and idl_type.kind in _FIXED):
                break
            code, align, size = _FIXED[idl_type.kind]
            pad = (-offset) % align
            if pad:
                head_fmt.append(f"{pad}x")
            head_fmt.append(code)
            head_checks.append(_validator(idl_type.kind))
            offset += pad + size
        else:
            index = len(types)

        self._head_struct = (
            struct.Struct(">" + "".join(head_fmt)) if head_fmt else None
        )
        self._head_checks = tuple(head_checks)
        self._head_size = offset
        self._head_count = index
        self._void_positions = frozenset(
            p for p in void_positions if p < index
        )
        tail_types = types[index:]
        self._tail_writers = tuple(
            compile_writer(t, compiled) for t in tail_types
        )
        self._tail_readers = tuple(
            compile_reader(t, compiled) for t in tail_types
        )
        self._arity = len(types)
        self.all_fixed = not self._tail_writers

    def marshal(self, values) -> bytes:
        """Encode ``values`` (one per signature type) as a typed CDR body."""
        if len(values) != self._arity:
            raise MarshalError(
                f"signature takes {self._arity} values, got {len(values)}"
            )
        head_count = self._head_count
        if self._void_positions:
            head_values = []
            for position in range(head_count):
                value = values[position]
                if position in self._void_positions:
                    if value is not None:
                        raise MarshalError(f"void value must be None, got {value!r}")
                else:
                    head_values.append(value)
        elif head_count == self._arity:
            head_values = values
        else:
            head_values = values[:head_count]
        packed = b""
        if self._head_struct is not None:
            # Validators enforce write_typed's type strictness; pack itself
            # then handles int -> double widening for float/double slots.
            for check, value in zip(self._head_checks, head_values):
                check(value)
            try:
                packed = self._head_struct.pack(*head_values)
            except struct.error as exc:  # pragma: no cover - checks precede
                raise MarshalError(str(exc)) from exc
        if not self._tail_writers:
            return packed
        out = CdrOutputStream()
        out._buf.extend(packed)
        for write, value in zip(self._tail_writers, values[head_count:]):
            write(out, value)
        return out.getvalue()

    def unmarshal(self, data) -> list:
        """Decode a typed CDR body back into the signature's value list."""
        if self._head_struct is not None:
            try:
                fixed = self._head_struct.unpack_from(data, 0)
            except struct.error as exc:
                raise MarshalError("CDR stream truncated") from exc
        else:
            fixed = ()
        if self._void_positions:
            values: list[Any] = []
            fixed_iter = iter(fixed)
            for position in range(self._head_count):
                if position in self._void_positions:
                    values.append(None)
                else:
                    values.append(next(fixed_iter))
        else:
            values = list(fixed)
        if self._tail_readers:
            stream = CdrInputStream(data)
            stream.seek(self._head_size)
            for read in self._tail_readers:
                values.append(read(stream))
        return values
