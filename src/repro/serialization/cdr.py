"""CDR-like stream codec used by the CORBA-like ORB.

CORBA's Common Data Representation is a stream of explicitly typed primitive
values: the sender and receiver agree on the sequence of types out of band
(the IDL signature), so the wire carries no per-value type tags for
primitives.  This module reproduces that style:

- big-endian fixed-width integers and IEEE floats,
- natural alignment of primitives (2/4/8-byte values aligned as in CDR),
- length-prefixed UTF-8 strings and byte sequences,
- a tagged ``any`` encoding for values whose type is only known at run time
  (used by the DII/DSI paths where requests are built dynamically).

The ``any`` encoding supports None, bool, int, float, str, bytes, list,
tuple, dict, and registered value types (:mod:`repro.serialization.registry`).
"""

from __future__ import annotations

import struct
from typing import Any

from repro.serialization.registry import TypeRegistry, global_registry
from repro.util.errors import MarshalError

# Type tags for the "any" encoding.
_TAG_NONE = 0
_TAG_TRUE = 1
_TAG_FALSE = 2
_TAG_INT64 = 3
_TAG_BIGINT = 4
_TAG_DOUBLE = 5
_TAG_STRING = 6
_TAG_BYTES = 7
_TAG_LIST = 8
_TAG_TUPLE = 9
_TAG_DICT = 10
_TAG_VALUE = 11

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class CdrOutputStream:
    """Write-side CDR stream with natural alignment."""

    def __init__(self, registry: TypeRegistry | None = None):
        self._buf = bytearray()
        self._registry = registry or global_registry

    def _align(self, n: int) -> None:
        pad = (-len(self._buf)) % n
        if pad:
            self._buf.extend(b"\x00" * pad)

    def write_octet(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def write_bool(self, value: bool) -> None:
        self._buf.append(1 if value else 0)

    def write_short(self, value: int) -> None:
        self._align(2)
        self._buf.extend(struct.pack(">h", value))

    def write_ushort(self, value: int) -> None:
        self._align(2)
        self._buf.extend(struct.pack(">H", value))

    def write_long(self, value: int) -> None:
        self._align(4)
        self._buf.extend(struct.pack(">i", value))

    def write_ulong(self, value: int) -> None:
        self._align(4)
        self._buf.extend(struct.pack(">I", value))

    def write_longlong(self, value: int) -> None:
        self._align(8)
        self._buf.extend(struct.pack(">q", value))

    def write_double(self, value: float) -> None:
        self._align(8)
        self._buf.extend(struct.pack(">d", value))

    def write_string(self, value: str) -> None:
        data = value.encode("utf-8")
        self.write_ulong(len(data))
        self._buf.extend(data)

    def write_bytes(self, value: bytes) -> None:
        self.write_ulong(len(value))
        self._buf.extend(value)

    def write_any(self, value: Any) -> None:
        """Write a run-time-typed value with a leading type tag."""
        if value is None:
            self.write_octet(_TAG_NONE)
        elif value is True:
            self.write_octet(_TAG_TRUE)
        elif value is False:
            self.write_octet(_TAG_FALSE)
        elif isinstance(value, int):
            if _INT64_MIN <= value <= _INT64_MAX:
                self.write_octet(_TAG_INT64)
                self.write_longlong(value)
            else:
                self.write_octet(_TAG_BIGINT)
                self.write_string(str(value))
        elif isinstance(value, float):
            self.write_octet(_TAG_DOUBLE)
            self.write_double(value)
        elif isinstance(value, str):
            self.write_octet(_TAG_STRING)
            self.write_string(value)
        elif isinstance(value, (bytes, bytearray)):
            self.write_octet(_TAG_BYTES)
            self.write_bytes(bytes(value))
        elif isinstance(value, list):
            self.write_octet(_TAG_LIST)
            self.write_ulong(len(value))
            for item in value:
                self.write_any(item)
        elif isinstance(value, tuple):
            self.write_octet(_TAG_TUPLE)
            self.write_ulong(len(value))
            for item in value:
                self.write_any(item)
        elif isinstance(value, dict):
            self.write_octet(_TAG_DICT)
            self.write_ulong(len(value))
            for key, item in value.items():
                self.write_any(key)
                self.write_any(item)
        else:
            name = self._registry.name_for(value)
            if name is None:
                raise MarshalError(
                    f"cannot marshal {type(value).__name__}; register it as a value type"
                )
            type_name, state = self._registry.encode(value)
            self.write_octet(_TAG_VALUE)
            self.write_string(type_name)
            self.write_any(state)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def getbuffer(self) -> memoryview:
        """Zero-copy view of the encoded bytes.

        For call sites that immediately hand the frame to a socket (or any
        bytes-like consumer) this skips the final ``bytes()`` copy of
        :meth:`getvalue`.  The view aliases the live buffer: it must be
        consumed before the stream is written to again or :meth:`reset`."""
        return memoryview(self._buf)

    def reset(self) -> None:
        """Clear the stream for reuse, keeping the allocated buffer."""
        self._buf.clear()

    def __len__(self) -> int:
        return len(self._buf)


class CdrInputStream:
    """Read-side CDR stream; raises :class:`MarshalError` on truncation.

    Reads operate on a :class:`memoryview` of the input, so every ``_take``
    is a zero-copy slice; bytes only materialize at string/bytes leaves."""

    def __init__(self, data, registry: TypeRegistry | None = None):
        self._data = data if isinstance(data, memoryview) else memoryview(data)
        self._pos = 0
        self._registry = registry or global_registry

    def _align(self, n: int) -> None:
        self._pos += (-self._pos) % n

    def _take(self, n: int) -> memoryview:
        if self._pos + n > len(self._data):
            raise MarshalError("CDR stream truncated")
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def seek(self, pos: int) -> None:
        """Position the read cursor (used by compiled marshalling plans)."""
        if not 0 <= pos <= len(self._data):
            raise MarshalError("CDR seek out of bounds")
        self._pos = pos

    def read_octet(self) -> int:
        return self._take(1)[0]

    def read_bool(self) -> bool:
        return self._take(1)[0] != 0

    def read_short(self) -> int:
        self._align(2)
        return struct.unpack(">h", self._take(2))[0]

    def read_ushort(self) -> int:
        self._align(2)
        return struct.unpack(">H", self._take(2))[0]

    def read_long(self) -> int:
        self._align(4)
        return struct.unpack(">i", self._take(4))[0]

    def read_ulong(self) -> int:
        self._align(4)
        return struct.unpack(">I", self._take(4))[0]

    def read_longlong(self) -> int:
        self._align(8)
        return struct.unpack(">q", self._take(8))[0]

    def read_double(self) -> float:
        self._align(8)
        return struct.unpack(">d", self._take(8))[0]

    def read_string(self) -> str:
        length = self.read_ulong()
        # str(buffer, encoding) decodes straight from the memoryview slice.
        return str(self._take(length), "utf-8")

    def read_bytes(self) -> bytes:
        length = self.read_ulong()
        return bytes(self._take(length))

    def read_any(self) -> Any:
        tag = self.read_octet()
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_TRUE:
            return True
        if tag == _TAG_FALSE:
            return False
        if tag == _TAG_INT64:
            return self.read_longlong()
        if tag == _TAG_BIGINT:
            return int(self.read_string())
        if tag == _TAG_DOUBLE:
            return self.read_double()
        if tag == _TAG_STRING:
            return self.read_string()
        if tag == _TAG_BYTES:
            return self.read_bytes()
        if tag in (_TAG_LIST, _TAG_TUPLE):
            count = self.read_ulong()
            items = [self.read_any() for _ in range(count)]
            return tuple(items) if tag == _TAG_TUPLE else items
        if tag == _TAG_DICT:
            count = self.read_ulong()
            result = {}
            for _ in range(count):
                key = self.read_any()
                result[key] = self.read_any()
            return result
        if tag == _TAG_VALUE:
            type_name = self.read_string()
            state = self.read_any()
            return self._registry.decode(type_name, state)
        raise MarshalError(f"unknown CDR any tag: {tag}")

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos


def cdr_dumps(value: Any, registry: TypeRegistry | None = None) -> bytes:
    """Encode one run-time-typed value as a standalone CDR buffer."""
    out = CdrOutputStream(registry)
    out.write_any(value)
    return out.getvalue()


def cdr_loads(data: bytes, registry: TypeRegistry | None = None) -> Any:
    """Decode a buffer produced by :func:`cdr_dumps`."""
    stream = CdrInputStream(data, registry)
    value = stream.read_any()
    return value
