"""Wire-format codecs for the two middleware substrates.

Two from-scratch binary codecs, mirroring the two platforms the paper targets:

- :mod:`repro.serialization.cdr` — a CDR-like stream codec used by the
  CORBA-like ORB's GIOP messages (explicit primitive read/write operations,
  big-endian, length-prefixed strings).
- :mod:`repro.serialization.jser` — a Java-serialization-like tagged codec
  used by the RMI-like platform (self-describing tagged values, reference
  handles for shared/cyclic structure, registered value classes).

Both refuse to encode unsupported types with :class:`~repro.util.errors.MarshalError`
rather than silently pickling arbitrary objects.
"""

from repro.serialization.cdr import CdrInputStream, CdrOutputStream, cdr_dumps, cdr_loads
from repro.serialization.jser import jser_dumps, jser_loads
from repro.serialization.registry import TypeRegistry, global_registry, value_type
from repro.serialization.streams import acquire_output_stream, release_output_stream

__all__ = [
    "CdrInputStream",
    "CdrOutputStream",
    "cdr_dumps",
    "cdr_loads",
    "jser_dumps",
    "jser_loads",
    "TypeRegistry",
    "global_registry",
    "value_type",
    "acquire_output_stream",
    "release_output_stream",
]
