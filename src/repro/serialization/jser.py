"""Java-serialization-like tagged codec used by the RMI-like platform.

Java RMI marshals arguments with Java object serialization: a self-describing
stream in which every value carries its type, and previously written objects
are replaced by back-references (handles) so shared and cyclic structure
round-trips.  This codec reproduces those properties:

- every value is tagged,
- ``list`` / ``dict`` / registered value-type instances are written once and
  referenced by handle afterwards (identity-based), so aliasing and cycles
  are preserved,
- registered value types (:mod:`repro.serialization.registry`) play the role
  of ``Serializable`` classes.

Varint-encoded lengths keep small messages compact, which is one of the
reasons the RMI substrate benchmarks faster than the ORB substrate — the
same qualitative gap the paper reports between JDK 1.3 RMI and Visibroker.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.serialization.registry import TypeRegistry, global_registry
from repro.util.errors import MarshalError

_TAG_NONE = 0
_TAG_TRUE = 1
_TAG_FALSE = 2
_TAG_INT = 3
_TAG_BIGINT = 4
_TAG_FLOAT = 5
_TAG_STR = 6
_TAG_BYTES = 7
_TAG_LIST = 8
_TAG_TUPLE = 9
_TAG_DICT = 10
_TAG_VALUE = 11
_TAG_REF = 12

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _write_varint(buf: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    if value < 0:
        raise MarshalError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


class _Encoder:
    def __init__(self, registry: TypeRegistry):
        self._buf = bytearray()
        self._registry = registry
        self._handles: dict[int, int] = {}  # id(obj) -> handle
        # Keep encoded objects alive so ids stay unique during encoding.
        self._pins: list[Any] = []

    def encode(self, value: Any) -> bytes:
        self._write(value)
        return bytes(self._buf)

    def _assign_handle(self, value: Any) -> int:
        handle = len(self._handles)
        self._handles[id(value)] = handle
        self._pins.append(value)
        return handle

    def _write_ref_or(self, value: Any) -> bool:
        """Write a back-reference if ``value`` was seen; return True if so."""
        handle = self._handles.get(id(value))
        if handle is None:
            return False
        self._buf.append(_TAG_REF)
        _write_varint(self._buf, handle)
        return True

    def _write(self, value: Any) -> None:
        # Ordered by observed frequency in RPC frames (strings and small
        # ints dominate); small lengths skip the varint helper entirely.
        buf = self._buf
        if type(value) is str:
            buf.append(_TAG_STR)
            data = value.encode("utf-8")
            n = len(data)
            if n < 0x80:
                buf.append(n)
            else:
                _write_varint(buf, n)
            buf.extend(data)
        elif value is None:
            buf.append(_TAG_NONE)
        elif value is True:
            buf.append(_TAG_TRUE)
        elif value is False:
            buf.append(_TAG_FALSE)
        elif isinstance(value, int):
            if _INT64_MIN <= value <= _INT64_MAX:
                buf.append(_TAG_INT)
                # zigzag so small negatives stay small
                encoded = ((value << 1) ^ (value >> 63)) & ((1 << 64) - 1)
                if encoded < 0x80:
                    buf.append(encoded)
                else:
                    _write_varint(buf, encoded)
            else:
                buf.append(_TAG_BIGINT)
                text = str(value).encode("ascii")
                _write_varint(buf, len(text))
                buf.extend(text)
        elif isinstance(value, float):
            buf.append(_TAG_FLOAT)
            buf.extend(struct.pack(">d", value))
        elif isinstance(value, str):  # str subclasses take the slow path
            buf.append(_TAG_STR)
            data = value.encode("utf-8")
            _write_varint(buf, len(data))
            buf.extend(data)
        elif isinstance(value, (bytes, bytearray)):
            self._buf.append(_TAG_BYTES)
            _write_varint(self._buf, len(value))
            self._buf.extend(value)
        elif isinstance(value, list):
            if self._write_ref_or(value):
                return
            self._assign_handle(value)
            self._buf.append(_TAG_LIST)
            _write_varint(self._buf, len(value))
            for item in value:
                self._write(item)
        elif isinstance(value, tuple):
            self._buf.append(_TAG_TUPLE)
            _write_varint(self._buf, len(value))
            for item in value:
                self._write(item)
        elif isinstance(value, dict):
            if self._write_ref_or(value):
                return
            self._assign_handle(value)
            self._buf.append(_TAG_DICT)
            _write_varint(self._buf, len(value))
            for key, item in value.items():
                self._write(key)
                self._write(item)
        else:
            if self._write_ref_or(value):
                return
            name = self._registry.name_for(value)
            if name is None:
                raise MarshalError(
                    f"cannot marshal {type(value).__name__}; register it as a value type"
                )
            self._assign_handle(value)
            type_name, state = self._registry.encode(value)
            self._buf.append(_TAG_VALUE)
            data = type_name.encode("utf-8")
            _write_varint(self._buf, len(data))
            self._buf.extend(data)
            self._write(state)


class _Decoder:
    def __init__(self, data: bytes, registry: TypeRegistry):
        self._data = data
        self._pos = 0
        self._registry = registry
        self._objects: list[Any] = []

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise MarshalError("jser stream truncated")
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def _read_varint(self) -> int:
        shift = 0
        result = 0
        while True:
            byte = self._take(1)[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise MarshalError("varint too long")

    def decode(self) -> Any:
        return self._read()

    def _read(self) -> Any:
        tag = self._take(1)[0]
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_TRUE:
            return True
        if tag == _TAG_FALSE:
            return False
        if tag == _TAG_INT:
            raw = self._read_varint()
            return (raw >> 1) ^ -(raw & 1)  # un-zigzag
        if tag == _TAG_BIGINT:
            length = self._read_varint()
            return int(self._take(length).decode("ascii"))
        if tag == _TAG_FLOAT:
            return struct.unpack(">d", self._take(8))[0]
        if tag == _TAG_STR:
            length = self._read_varint()
            return self._take(length).decode("utf-8")
        if tag == _TAG_BYTES:
            length = self._read_varint()
            return self._take(length)
        if tag == _TAG_LIST:
            count = self._read_varint()
            items: list[Any] = []
            self._objects.append(items)
            for _ in range(count):
                items.append(self._read())
            return items
        if tag == _TAG_TUPLE:
            count = self._read_varint()
            return tuple(self._read() for _ in range(count))
        if tag == _TAG_DICT:
            count = self._read_varint()
            result: dict[Any, Any] = {}
            self._objects.append(result)
            for _ in range(count):
                key = self._read()
                result[key] = self._read()
            return result
        if tag == _TAG_VALUE:
            length = self._read_varint()
            type_name = self._take(length).decode("utf-8")
            # Reserve the handle before reading state so cycles through the
            # instance resolve; patch the placeholder after construction.
            placeholder_index = len(self._objects)
            self._objects.append(None)
            state = self._read()
            obj = self._registry.decode(type_name, state)
            self._objects[placeholder_index] = obj
            return obj
        if tag == _TAG_REF:
            handle = self._read_varint()
            if handle >= len(self._objects):
                raise MarshalError(f"dangling jser reference: {handle}")
            return self._objects[handle]
        raise MarshalError(f"unknown jser tag: {tag}")


def jser_dumps(value: Any, registry: TypeRegistry | None = None) -> bytes:
    """Encode a value as a self-describing jser buffer."""
    return _Encoder(registry or global_registry).encode(value)


def jser_loads(data: bytes, registry: TypeRegistry | None = None) -> Any:
    """Decode a buffer produced by :func:`jser_dumps`."""
    return _Decoder(data, registry or global_registry).decode()
