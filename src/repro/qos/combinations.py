"""The composability matrix (paper section 3.5).

"The fault-tolerance micro-protocols can be used in five different
combinations: passive replication (1) or active replication with any
combinations of total order and acceptance (4).  Overall, a service can be
configured with no fault tolerance or any of these five fault-tolerance
combinations with any combination of the three security micro-protocols
and any of the three timeliness micro-protocols.  As a result, even this
small set of micro-protocols can be configured in over 100 different
combinations."

Arithmetic check: (1 + 5) fault-tolerance choices × 2³ security subsets ×
(1 + 3) timeliness choices = 192 > 100.  :func:`count_combinations` computes
it; :func:`all_combinations` enumerates them; :func:`validate_configuration`
checks a concrete client/server pair for the constraints the matrix
encodes (and the cross-side consistency that static customization requires
— "the configurations in statically customized client and server protocols
must match for the system to operate correctly").
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations

from repro.util.errors import ConfigurationError

# Feature names (configuration vocabulary, not class names).
FT_NONE = "none"
FT_PASSIVE = "passive"
FT_ACTIVE = "active"
FT_ACTIVE_VOTE = "active+vote"
FT_ACTIVE_TOTAL = "active+total"
FT_ACTIVE_VOTE_TOTAL = "active+vote+total"

#: The paper's five fault-tolerance combinations (plus "none").
FT_COMBINATIONS = (
    FT_PASSIVE,
    FT_ACTIVE,
    FT_ACTIVE_VOTE,
    FT_ACTIVE_TOTAL,
    FT_ACTIVE_VOTE_TOTAL,
)

SECURITY_FEATURES = ("privacy", "integrity", "access")
TIMELINESS_FEATURES = ("priority", "queued", "timed")

#: Resilience extensions (not part of the paper's 192-point matrix — they
#: compose orthogonally with every combination, so they are vocabulary for
#: :func:`validate_configuration`, not extra axes of :func:`all_combinations`).
RESILIENCE_FEATURES = ("retry", "breaker", "degrade", "deadline")

#: Overload-protection extensions (same status as the resilience features:
#: vocabulary for validation, not matrix axes).
OVERLOAD_FEATURES = ("admission", "caching", "balance")

#: Which side(s) each feature's micro-protocols live on.
CLIENT_SIDE = {
    FT_PASSIVE: ("PassiveRep",),
    FT_ACTIVE: ("ActiveRep",),
    FT_ACTIVE_VOTE: ("ActiveRep", "MajorityVote"),
    FT_ACTIVE_TOTAL: ("ActiveRep",),
    FT_ACTIVE_VOTE_TOTAL: ("ActiveRep", "MajorityVote"),
    "privacy": ("DesPrivacy",),
    "integrity": ("SignedIntegrity",),
    "retry": ("RetryBackoff",),
    "breaker": ("CircuitBreaker",),
    "degrade": ("Degrade",),
    "deadline": ("DeadlineBudget",),
    "caching": ("ClientCache",),
    "balance": ("LoadBalance",),
}

SERVER_SIDE = {
    FT_PASSIVE: ("PassiveRepServer",),
    FT_ACTIVE_TOTAL: ("TotalOrder",),
    FT_ACTIVE_VOTE_TOTAL: ("TotalOrder",),
    "privacy": ("DesPrivacyServer",),
    "integrity": ("SignedIntegrityServer",),
    "access": ("AccessControl",),
    "priority": ("PrioritySched",),
    "queued": ("QueuedSched",),
    "timed": ("TimedSched",),
    "deadline": ("DeadlineShed",),
    "admission": ("AdmissionControl",),
    "caching": ("CacheInvalidator",),
    "balance": ("LoadReporter",),
}


@dataclass(frozen=True)
class Combination:
    """One point of the configuration space."""

    fault_tolerance: str = FT_NONE
    security: tuple[str, ...] = ()
    timeliness: str | None = None

    def client_protocols(self) -> tuple[str, ...]:
        names = list(CLIENT_SIDE.get(self.fault_tolerance, ()))
        for feature in self.security:
            names.extend(CLIENT_SIDE.get(feature, ()))
        return tuple(names)

    def server_protocols(self) -> tuple[str, ...]:
        names = list(SERVER_SIDE.get(self.fault_tolerance, ()))
        for feature in self.security:
            names.extend(SERVER_SIDE.get(feature, ()))
        if self.timeliness is not None:
            names.extend(SERVER_SIDE.get(self.timeliness, ()))
        return tuple(names)

    def label(self) -> str:
        parts = [self.fault_tolerance]
        parts.extend(self.security)
        if self.timeliness:
            parts.append(self.timeliness)
        return "/".join(parts)


def _powerset(items: tuple[str, ...]):
    return chain.from_iterable(combinations(items, k) for k in range(len(items) + 1))


def all_combinations() -> list[Combination]:
    """Enumerate the full configuration space of section 3.5."""
    result = []
    for ft in (FT_NONE, *FT_COMBINATIONS):
        for security in _powerset(SECURITY_FEATURES):
            for timeliness in (None, *TIMELINESS_FEATURES):
                result.append(
                    Combination(
                        fault_tolerance=ft,
                        security=tuple(security),
                        timeliness=timeliness,
                    )
                )
    return result


def count_combinations() -> int:
    """(1+5) FT x 2^3 security x (1+3) timeliness = 192 (> 100)."""
    return len(all_combinations())


# -- validation of concrete micro-protocol sets -----------------------------

_CLIENT_FT = {"ActiveRep", "PassiveRep"}
_ACCEPTANCE = {"FirstSuccess", "MajorityVote"}
_TIMELINESS = {"PrioritySched", "QueuedSched", "TimedSched"}
_PAIRED = {
    "DesPrivacy": "DesPrivacyServer",
    "SignedIntegrity": "SignedIntegrityServer",
    "PassiveRep": "PassiveRepServer",
}


def validate_configuration(
    client_names: list[str] | tuple[str, ...],
    server_names: list[str] | tuple[str, ...],
) -> None:
    """Reject invalid or mismatched client/server configurations.

    Raises :class:`~repro.util.errors.ConfigurationError` describing the
    first violated constraint.  The constraints are the ones implicit in
    the paper's matrix:

    - ActiveRep and PassiveRep are mutually exclusive;
    - at most one acceptance micro-protocol, and only with ActiveRep;
    - TotalOrder (server) requires ActiveRep (client) — with a single
      primary there is nothing to order consistently;
    - at most one of the queue-based/timed schedulers (both schedule the
      same queue events); PrioritySched composes with either;
    - paired protocols (privacy, integrity, passive replication) must be
      configured on both sides;
    - Retransmit and RetryBackoff are mutually exclusive — both rebind the
      same failure, so configuring both multiplies retry traffic;
    - overload-protection coherence: ClientCache must not silently bypass
      privacy-without-integrity, acceptance voting, or replication
      assigners; LoadBalance and the replication assigners replace the
      same base handler; CacheInvalidator is pointless without its client
      half.
    """
    client = set(client_names)
    server = set(server_names)

    if {"Retransmit", "RetryBackoff"} <= client:
        raise ConfigurationError(
            "Retransmit and RetryBackoff are mutually exclusive (double retry)"
        )

    ft = client & _CLIENT_FT
    if len(ft) > 1:
        raise ConfigurationError("ActiveRep and PassiveRep are mutually exclusive")
    acceptance = client & _ACCEPTANCE
    if len(acceptance) > 1:
        raise ConfigurationError(
            "configure at most one acceptance micro-protocol "
            f"(got {sorted(acceptance)})"
        )
    if acceptance and "ActiveRep" not in client:
        raise ConfigurationError(
            f"{sorted(acceptance)[0]} needs multiple replies and therefore ActiveRep"
        )
    if "TotalOrder" in server and "ActiveRep" not in client:
        raise ConfigurationError("TotalOrder (server) requires ActiveRep (client)")
    queue_scheds = server & {"QueuedSched", "TimedSched"}
    if len(queue_scheds) > 1:
        raise ConfigurationError(
            "QueuedSched and TimedSched are mutually exclusive (one queue policy)"
        )
    for client_name, server_name in _PAIRED.items():
        if client_name in client and server_name not in server:
            raise ConfigurationError(
                f"{client_name} (client) requires {server_name} (server)"
            )
        if server_name in server and client_name not in client:
            raise ConfigurationError(
                f"{server_name} (server) requires {client_name} (client)"
            )

    # -- overload-protection coherence ------------------------------------

    if "ClientCache" in client and "DesPrivacy" in client and "SignedIntegrity" not in client:
        raise ConfigurationError(
            "ClientCache with DesPrivacy requires SignedIntegrity: cached "
            "replies are stored and re-served as plaintext, so without a "
            "signature a tampered cache-fill reply is replayed forever — "
            "add .integrity(...) or drop the cache"
        )
    cache_bypassed = client & (_ACCEPTANCE | _CLIENT_FT)
    if "ClientCache" in client and cache_bypassed:
        raise ConfigurationError(
            f"ClientCache cannot compose with {sorted(cache_bypassed)}: a "
            "cache hit completes the request locally without consulting any "
            "replica, silently bypassing the replication/acceptance "
            "guarantee — drop the cache or the replication protocols"
        )
    lb_conflict = client & _CLIENT_FT
    if "LoadBalance" in client and lb_conflict:
        raise ConfigurationError(
            f"LoadBalance and {sorted(lb_conflict)[0]} both replace the base "
            "assigner: the replication protocol pins requests (primary / "
            "all replicas) while LoadBalance spreads them, so state "
            "diverges — pick one assignment policy"
        )
    if "CacheInvalidator" in server and "ClientCache" not in client:
        raise ConfigurationError(
            "CacheInvalidator (server) requires ClientCache (client): there "
            "is no cache to invalidate — remove it or configure the client "
            "half of the caching pair"
        )
