"""Micro-protocols beyond the paper's prototype set.

Each is something the paper explicitly names as implementable in the same
way (sections 2.2, 3, and 3.5):

- :class:`~repro.qos.extensions.load_balance.LoadBalance` — "the
  server_status() operation … could be extended to provide information such
  as the load conditions on the server for load balancing purposes";
- :class:`~repro.qos.extensions.caching.ClientCache` /
  :class:`~repro.qos.extensions.caching.CacheInvalidator` — "other
  properties and functions such as caching, prefetching, and load balancing
  could be implemented in similar ways";
- :class:`~repro.qos.extensions.admission.AdmissionControl` — "additional
  timeliness micro-protocols could include admission control and traffic
  enforcement".

Together they form the overload-protection stack (DESIGN.md §12): SLO-aware
admission sheds doomed and over-budget work first, the caching pair keeps
read traffic off the wire with event-driven invalidation, and the
latency-EWMA balancer steers around hot replicas.
"""

from repro.qos.extensions.load_balance import LoadBalance, LoadReporter
from repro.qos.extensions.caching import ATTR_SERVED_STALE, CacheInvalidator, ClientCache
from repro.qos.extensions.admission import (
    AdmissionControl,
    AdmissionRejectedError,
    RateLimiter,
)

__all__ = [
    "LoadBalance",
    "LoadReporter",
    "ClientCache",
    "CacheInvalidator",
    "ATTR_SERVED_STALE",
    "AdmissionControl",
    "AdmissionRejectedError",
    "RateLimiter",
]
