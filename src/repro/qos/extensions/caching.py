"""Client-side result caching (extension; paper §3 names caching as a
property implementable "in similar ways").

:class:`ClientCache` serves designated *read* operations from a local cache
and invalidates on any other (write) operation to the same object — the
classic read-mostly accelerator, expressed as two handlers:

- an early ``newRequest`` handler that completes cached reads locally and
  halts the pipeline (no message is sent at all);
- a late ``invokeSuccess`` handler that populates the cache from real
  replies and clears it after writes.

Consistency caveat (documented, not hidden): the cache is per-client; other
clients' writes are invisible until ``ttl`` expires.  With ``ttl=0`` the
cache only coalesces a client's own repeated reads between its own writes.
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_FIRST, ORDER_LATE, Occurrence
from repro.core.events import EV_INVOKE_SUCCESS, EV_NEW_REQUEST
from repro.core.request import Reply, Request


@register_micro_protocol("ClientCache")
class ClientCache(MicroProtocol):
    """Cache replies of read operations; invalidate on writes."""

    name = "ClientCache"

    def __init__(self, read_operations: list[str] | tuple[str, ...] = (), ttl: float = 0.0):
        """``read_operations``: operation names safe to serve from cache.

        ``ttl``: seconds a cached value stays fresh; 0 means "until this
        client's next write".
        """
        super().__init__()
        self._reads = frozenset(read_operations)
        self._ttl = ttl
        # (operation, params-repr) -> (value, cached_at)
        self._cache: dict[tuple, tuple] = {}
        self.hits = 0
        self.misses = 0

    def start(self) -> None:
        self.bind(EV_NEW_REQUEST, self.serve_from_cache, order=ORDER_FIRST)
        self.bind(EV_INVOKE_SUCCESS, self.update_cache, order=ORDER_LATE)

    def _key(self, request: Request) -> tuple:
        return (request.operation, repr(request.get_params()))

    def _fresh(self, cached_at: float) -> bool:
        if self._ttl <= 0.0:
            return True
        return self.composite.runtime.clock.now() - cached_at <= self._ttl

    def serve_from_cache(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        if request.operation not in self._reads:
            return
        with self.shared.lock:
            entry = self._cache.get(self._key(request))
        if entry is not None and self._fresh(entry[1]):
            self.hits += 1
            request.complete(entry[0])
            occurrence.halt_all()
        else:
            self.misses += 1

    def update_cache(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        reply: Reply = occurrence.args[2]
        if reply.exception is not None:
            return
        with self.shared.lock:
            if request.operation in self._reads:
                self._cache[self._key(request)] = (
                    reply.value,
                    self.composite.runtime.clock.now(),
                )
            else:
                # A write: everything this client cached may be stale.
                self._cache.clear()

    def peek(self, request: Request) -> tuple[bool, object]:
        """Look up the cached value for ``request`` without completing it.

        Returns ``(hit, value)``.  Ignores freshness on purpose: the caller
        is the graceful-degradation path (Degrade), where an *expired* entry
        is still the best available answer — "stale" is the whole point.
        """
        with self.shared.lock:
            entry = self._cache.get(self._key(request))
        return (True, entry[0]) if entry is not None else (False, None)

    def invalidate(self) -> None:
        """Explicit invalidation hook for applications."""
        with self.shared.lock:
            self._cache.clear()
