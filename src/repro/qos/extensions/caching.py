"""Result caching as a coherent micro-protocol *pair* (extension; paper §3
names caching as a property implementable "in similar ways").

:class:`ClientCache` serves designated *read* operations from a local cache;
:class:`CacheInvalidator` is its server-side counterpart: on every mutating
operation it bumps an invalidation epoch, records which read operations the
write invalidated, raises the Cactus ``cacheInvalidate`` event, and
piggybacks the per-operation delta back to clients on the reply leg (the
PB_* codec's reply envelope) — so client invalidation is *event-driven and
per-key* instead of the historical all-or-nothing ``invalidate()``.

The client stamps its last seen epoch (``PB_CACHE_EPOCH``) on every request;
the server answers with only the invalidations the client has not seen yet
(``PB_CACHE_INVALIDATE``), or "flush everything" when the client is further
behind than the bounded invalidation log remembers.  Epochs are tracked per
replica, so the pair stays correct under latency-aware balancing.

Overload coupling: with ``stale_while_shedding`` the cache catches
:class:`~repro.util.errors.AdmissionRejectedError` failures and serves the
*expired* entry instead — when the server is shedding, a stale answer beats
no answer (the serve is marked with :data:`ATTR_SERVED_STALE`).

Consistency caveat (documented, not hidden): without a server-side
CacheInvalidator, other clients' writes stay invisible until ``ttl``
expires, exactly as before.
"""

from __future__ import annotations

from collections import deque

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_DEFAULT, ORDER_FIRST, ORDER_LATE, Occurrence
from repro.core.events import (
    EV_INVOKE_FAILURE,
    EV_INVOKE_RETURN,
    EV_INVOKE_SUCCESS,
    EV_NEW_REQUEST,
    EV_READY_TO_SEND,
)
from repro.core.request import PB_CACHE_EPOCH, PB_CACHE_INVALIDATE, Reply, Request
from repro.util.errors import AdmissionRejectedError
from repro.util.log import get_logger

logger = get_logger("qos.caching")

#: Cactus event raised by CacheInvalidator when a write invalidates reads:
#: ``cacheInvalidate(epoch, operations)`` (operations is None for "all").
EV_CACHE_INVALIDATE = "cacheInvalidate"

#: Request attribute marking a reply served from an expired cache entry
#: because admission control was shedding.
ATTR_SERVED_STALE = "cache_stale"


@register_micro_protocol("ClientCache")
class ClientCache(MicroProtocol):
    """Cache replies of read operations; invalidate per-key on events."""

    name = "ClientCache"

    def __init__(
        self,
        read_operations: list[str] | tuple[str, ...] = (),
        ttl: float = 0.0,
        stale_while_shedding: bool = False,
    ):
        """``read_operations``: operation names safe to serve from cache.

        ``ttl``: seconds a cached value stays fresh; 0 means "until
        invalidated" (by this client's own writes or by a server-side
        CacheInvalidator delta).

        ``stale_while_shedding``: serve expired entries when the server's
        admission control rejects the refresh.
        """
        super().__init__()
        self._reads = frozenset(read_operations)
        self._ttl = ttl
        self._stale_while_shedding = stale_while_shedding
        # (operation, params-repr) -> (value, cached_at)
        self._cache: dict[tuple, tuple] = {}
        # operation -> set of cache keys (per-key invalidation index)
        self._by_op: dict[str, set] = {}
        # replica -> last invalidation epoch seen from it
        self._epochs: dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.stale_serves = 0

    def start(self) -> None:
        self.bind(EV_NEW_REQUEST, self.serve_from_cache, order=ORDER_FIRST)
        self.bind(EV_READY_TO_SEND, self.stamp_epoch, order=ORDER_DEFAULT)
        self.bind(EV_INVOKE_SUCCESS, self.update_cache, order=ORDER_LATE)
        if self._stale_while_shedding:
            self.bind(EV_INVOKE_FAILURE, self.serve_stale, order=ORDER_LATE)

    def _key(self, request: Request) -> tuple:
        return (request.operation, repr(request.get_params()))

    def _fresh(self, cached_at: float) -> bool:
        if self._ttl <= 0.0:
            return True
        return self.composite.runtime.clock.now() - cached_at <= self._ttl

    # -- handlers ------------------------------------------------------------

    def serve_from_cache(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        if request.operation not in self._reads:
            return
        with self.shared.lock:
            entry = self._cache.get(self._key(request))
        if entry is not None and self._fresh(entry[1]):
            self.hits += 1
            request.complete(entry[0])
            occurrence.halt_all()
        else:
            self.misses += 1

    def stamp_epoch(self, occurrence: Occurrence) -> None:
        """Tell the server which invalidation epoch this client has seen."""
        request: Request = occurrence.args[0]
        server: int = occurrence.args[1]
        with self.shared.lock:
            request.piggyback[PB_CACHE_EPOCH] = self._epochs.get(server, 0)

    def update_cache(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        reply: Reply = occurrence.args[2]
        delta = request.reply_piggyback.get(PB_CACHE_INVALIDATE)
        if delta is not None:
            self._apply_delta(reply.server, delta)
        if reply.exception is not None:
            return
        with self.shared.lock:
            if request.operation in self._reads:
                key = self._key(request)
                self._cache[key] = (
                    reply.value,
                    self.composite.runtime.clock.now(),
                )
                self._by_op.setdefault(request.operation, set()).add(key)
            elif delta is None:
                # A write with no server-side invalidator: fall back to the
                # historical all-or-nothing clear.
                self._clear_locked()

    def serve_stale(self, occurrence: Occurrence) -> None:
        """Shed refresh: an expired entry beats no answer at all."""
        request: Request = occurrence.args[0]
        reply: Reply = occurrence.args[2]
        if not isinstance(reply.exception, AdmissionRejectedError):
            return
        if request.operation not in self._reads:
            return
        with self.shared.lock:
            entry = self._cache.get(self._key(request))
        if entry is None:
            return
        request.attributes[ATTR_SERVED_STALE] = True
        self.stale_serves += 1
        self.incr("stale_serves")
        if request.complete(entry[0]):
            occurrence.halt()

    # -- invalidation ---------------------------------------------------------

    def _apply_delta(self, server: int, delta) -> None:
        try:
            epoch, operations = delta
        except (TypeError, ValueError):
            return
        with self.shared.lock:
            if epoch <= self._epochs.get(server, 0):
                return
            self._epochs[server] = int(epoch)
            if operations is None:
                self._clear_locked()
                return
            for operation in operations:
                self._invalidate_locked(operation)

    def _invalidate_locked(self, operation: str) -> None:
        for key in self._by_op.pop(operation, set()):
            self._cache.pop(key, None)

    def _clear_locked(self) -> None:
        self._cache.clear()
        self._by_op.clear()

    def invalidate(self, operation: str | None = None) -> None:
        """Explicit invalidation hook: one operation's entries, or all."""
        with self.shared.lock:
            if operation is None:
                self._clear_locked()
            else:
                self._invalidate_locked(operation)

    def peek(self, request: Request) -> tuple[bool, object]:
        """Look up the cached value for ``request`` without completing it.

        Returns ``(hit, value)``.  Ignores freshness on purpose: the caller
        is the graceful-degradation path (Degrade), where an *expired* entry
        is still the best available answer — "stale" is the whole point.
        """
        with self.shared.lock:
            entry = self._cache.get(self._key(request))
        return (True, entry[0]) if entry is not None else (False, None)


@register_micro_protocol("CacheInvalidator")
class CacheInvalidator(MicroProtocol):
    """Server half of the caching pair: event-driven invalidation.

    ``invalidates`` optionally maps a write operation to the read
    operations it invalidates (e.g. ``{"deposit": ["get_balance"]}``);
    without it every successful write invalidates every read operation.
    The invalidation log is bounded (``log_size`` epochs); a client further
    behind than the log gets a "flush everything" delta, which is always
    safe.
    """

    name = "CacheInvalidator"

    def __init__(
        self,
        read_operations: list[str] | tuple[str, ...] = (),
        invalidates: dict | None = None,
        log_size: int = 256,
    ):
        super().__init__()
        self._reads = frozenset(read_operations)
        self._invalidates = (
            {op: tuple(targets) for op, targets in invalidates.items()}
            if invalidates
            else None
        )
        # (epoch, frozenset(operations) | None); None = all read operations.
        self._log: deque = deque(maxlen=log_size)
        self._epoch = 0

    def start(self) -> None:
        self.bind(EV_INVOKE_RETURN, self.on_return, order=ORDER_LATE)

    def epoch(self) -> int:
        with self.shared.lock:
            return self._epoch

    def on_return(self, occurrence: Occurrence) -> None:
        from repro.qos.base import ATTR_SERVANT_EXCEPTION

        request: Request = occurrence.args[0]
        mutated = (
            request.operation not in self._reads
            and request.attributes.get(ATTR_SERVANT_EXCEPTION) is None
        )
        if mutated:
            if self._invalidates is None:
                affected = None  # all read operations
            else:
                affected = frozenset(self._invalidates.get(request.operation, ()))
            if affected is None or affected:
                with self.shared.lock:
                    self._epoch += 1
                    self._log.append((self._epoch, affected))
                    epoch = self._epoch
                self.incr("invalidations")
                self.raise_event(EV_CACHE_INVALIDATE, epoch, affected)
        client_epoch = request.piggyback.get(PB_CACHE_EPOCH)
        if client_epoch is None:
            return
        delta = self._delta_since(int(client_epoch))
        if delta is not None:
            request.reply_piggyback[PB_CACHE_INVALIDATE] = delta

    def _delta_since(self, client_epoch: int):
        """``[epoch, ops]`` the client has not seen (None ops = flush all)."""
        with self.shared.lock:
            if client_epoch >= self._epoch:
                return None  # client is current: nothing to piggyback
            oldest_known = self._log[0][0] if self._log else self._epoch + 1
            if client_epoch < oldest_known - 1:
                # The log no longer reaches back far enough: flush all.
                return [self._epoch, None]
            operations: set = set()
            for epoch, affected in self._log:
                if epoch <= client_epoch:
                    continue
                if affected is None:
                    return [self._epoch, None]
                operations.update(affected)
            return [self._epoch, sorted(operations)]
