"""Load balancing over server replicas (extension; paper §2.2).

Two halves:

- :class:`LoadReporter` (server) — tracks the number of requests currently
  executing on this replica and answers ``load`` control-plane queries: the
  load-conditions extension of ``server_status()`` the paper sketches;
- :class:`LoadBalance` (client) — overrides the base assigner, directing
  each request to the least-loaded live replica.  Load is polled lazily
  with a bounded staleness (``poll_interval``), so steady traffic costs one
  extra control message per replica per interval, not per request.

Composable with the acceptance and security protocols; mutually exclusive
with the replication assigners (ActiveRep sends everywhere, PassiveRep
pins a primary — both replace the same base handler).
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_EARLY, ORDER_LAST, Occurrence
from repro.core.client import SHARED_FAILED_SERVERS, SHARED_PLATFORM
from repro.core.events import (
    CONTROL_EVENT_PREFIX,
    EV_INVOKE_RETURN,
    EV_NEW_REQUEST,
    EV_NEW_SERVER_REQUEST,
    EV_READY_TO_SEND,
)
from repro.core.interfaces import ClientPlatform, ControlMessage
from repro.core.request import Request
from repro.util.errors import CommunicationError, ServerFailedError

CONTROL_LOAD = "load"


@register_micro_protocol("LoadReporter")
class LoadReporter(MicroProtocol):
    """Server half: count in-flight requests, answer load queries."""

    name = "LoadReporter"

    def __init__(self) -> None:
        super().__init__()
        self._in_flight = 0

    def start(self) -> None:
        self.bind(EV_NEW_SERVER_REQUEST, self.request_arrived, order=ORDER_EARLY)
        self.bind(EV_INVOKE_RETURN, self.request_done, order=ORDER_LAST)
        self.bind(CONTROL_EVENT_PREFIX + CONTROL_LOAD, self.report_load)

    def request_arrived(self, occurrence: Occurrence) -> None:
        with self.shared.lock:
            self._in_flight += 1

    def request_done(self, occurrence: Occurrence) -> None:
        with self.shared.lock:
            self._in_flight = max(0, self._in_flight - 1)

    def report_load(self, occurrence: Occurrence) -> None:
        message: ControlMessage = occurrence.args[0]
        with self.shared.lock:
            message.respond(self._in_flight)

    def current_load(self) -> int:
        with self.shared.lock:
            return self._in_flight


@register_micro_protocol("LoadBalance")
class LoadBalance(MicroProtocol):
    """Client half: assign each request to the least-loaded replica."""

    name = "LoadBalance"

    def __init__(self, poll_interval: float = 0.25):
        super().__init__()
        self._poll_interval = poll_interval
        self._loads: dict[int, int] = {}
        self._last_poll = float("-inf")

    def start(self) -> None:
        self.bind(EV_NEW_REQUEST, self.lb_assigner, order=ORDER_EARLY)

    # -- load polling ------------------------------------------------------

    def _poll_loads(self, platform: ClientPlatform) -> None:
        """Query each replica's LoadReporter through the control plane.

        Uses the platform's control operation (the same path as ping); a
        replica that cannot be reached is reported as failed-for-now.
        """
        from repro.core.skeleton import CONTROL_OPERATION

        failed: set = self.shared.get(SHARED_FAILED_SERVERS)
        for server in range(1, platform.num_servers() + 1):
            try:
                platform.bind(server)
                ref_invoke = getattr(platform, "invoke_server")
                probe = Request(
                    "lb", CONTROL_OPERATION, [CONTROL_LOAD, 0, {}]
                )
                self._loads[server] = int(ref_invoke(server, probe))
            except (CommunicationError, Exception):  # noqa: BLE001
                self._loads[server] = 1 << 30
                with self.shared.lock:
                    failed.add(server)

    def _maybe_poll(self, platform: ClientPlatform) -> None:
        now = self.composite.runtime.clock.now()
        if now - self._last_poll >= self._poll_interval:
            self._last_poll = now
            self._poll_loads(platform)

    # -- assignment ------------------------------------------------------------

    def lb_assigner(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        platform: ClientPlatform = self.shared.get(SHARED_PLATFORM)
        failed: set = self.shared.get(SHARED_FAILED_SERVERS)
        self._maybe_poll(platform)
        candidates = [
            server
            for server in range(1, platform.num_servers() + 1)
            if server not in failed
        ]
        if not candidates:
            request.fail(ServerFailedError("no live replica for load balancing"))
            occurrence.halt()
            return
        chosen = min(candidates, key=lambda s: (self._loads.get(s, 0), s))
        # Optimistically bump the chosen replica so a burst between polls
        # spreads instead of dogpiling.
        self._loads[chosen] = self._loads.get(chosen, 0) + 1
        request.server = chosen
        self.raise_event(EV_READY_TO_SEND, request, chosen)
        occurrence.halt()

    def known_loads(self) -> dict[int, int]:
        return dict(self._loads)
