"""Load balancing over server replicas (extension; paper §2.2).

Two halves:

- :class:`LoadReporter` (server) — tracks the number of requests currently
  executing on this replica and answers ``load`` control-plane queries: the
  load-conditions extension of ``server_status()`` the paper sketches;
- :class:`LoadBalance` (client) — overrides the base assigner with
  latency-aware replica selection: per-replica service-latency EWMAs are
  fed *passively* from each invocation's send→reply timestamps (no extra
  messages), and assignment is power-of-two-choices over
  ``EWMA × (outstanding + 1)``.  The synchronous control-plane load poll
  survives only as the cold-start path: a replica with no latency samples
  yet is explored first, ranked by its last polled load.

A transient probe failure during the cold-start poll keeps the replica's
*stale* load (or a pessimistic default) — it does **not** mark the replica
failed: only the binding layer's fault taxonomy may do that, and a lost
control probe says nothing about the replica's ability to serve requests.

Composable with the acceptance and security protocols; mutually exclusive
with the replication assigners (ActiveRep sends everywhere, PassiveRep
pins a primary — both replace the same base handler).
"""

from __future__ import annotations

import random
import threading

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_EARLY, ORDER_FIRST, Occurrence
from repro.core.client import SHARED_FAILED_SERVERS, SHARED_PLATFORM
from repro.core.events import (
    CONTROL_EVENT_PREFIX,
    EV_INVOKE_FAILURE,
    EV_INVOKE_SUCCESS,
    EV_NEW_REQUEST,
    EV_NEW_SERVER_REQUEST,
    EV_READY_TO_SEND,
)
from repro.core.interfaces import ClientPlatform, ControlMessage
from repro.core.request import Request
from repro.util.errors import BindError, CommunicationError, ServerFailedError
from repro.util.log import get_logger

logger = get_logger("qos.load_balance")

CONTROL_LOAD = "load"

#: Request attribute: monotonic timestamp of the current send attempt.
_ATTR_SENT_AT = "lb_sent_at"
#: Request attribute: replica whose outstanding counter this request holds.
_ATTR_COUNTED = "lb_counted"

#: Polled load reported for a replica whose probe failed and that has no
#: earlier polled value to fall back on (pessimistic, but not "failed").
STALE_LOAD = 1 << 20


@register_micro_protocol("LoadReporter")
class LoadReporter(MicroProtocol):
    """Server half: count in-flight requests, answer load queries."""

    name = "LoadReporter"

    def __init__(self) -> None:
        super().__init__()
        self._in_flight = 0

    def start(self) -> None:
        self.bind(EV_NEW_SERVER_REQUEST, self.request_arrived, order=ORDER_EARLY)
        self.bind(CONTROL_EVENT_PREFIX + CONTROL_LOAD, self.report_load)

    def request_arrived(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        with self.shared.lock:
            self._in_flight += 1
        # on_complete, not invokeReturn: a request shed by admission (or
        # killed by a handler fault) never reaches invokeReturn but must
        # still leave the load count.
        request.on_complete(self._request_done)

    def _request_done(self, request: Request) -> None:
        with self.shared.lock:
            self._in_flight = max(0, self._in_flight - 1)

    def report_load(self, occurrence: Occurrence) -> None:
        message: ControlMessage = occurrence.args[0]
        with self.shared.lock:
            message.respond(self._in_flight)

    def current_load(self) -> int:
        with self.shared.lock:
            return self._in_flight


@register_micro_protocol("LoadBalance")
class LoadBalance(MicroProtocol):
    """Client half: latency-EWMA power-of-two-choices replica selection."""

    name = "LoadBalance"

    def __init__(
        self,
        poll_interval: float = 0.25,
        alpha: float = 0.3,
        failure_penalty: float = 2.0,
        seed: int | None = None,
    ):
        super().__init__()
        self._poll_interval = poll_interval
        self._alpha = alpha
        self._failure_penalty = failure_penalty
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._loads: dict[int, int] = {}
        self._ewma: dict[int, float] = {}
        self._outstanding: dict[int, int] = {}
        self._last_poll = float("-inf")

    def start(self) -> None:
        self.bind(EV_NEW_REQUEST, self.lb_assigner, order=ORDER_EARLY)
        self.bind(EV_READY_TO_SEND, self.on_send, order=ORDER_EARLY)
        self.bind(EV_INVOKE_SUCCESS, self.on_reply, order=ORDER_FIRST)
        self.bind(EV_INVOKE_FAILURE, self.on_reply_failure, order=ORDER_FIRST)

    # -- load polling (cold-start fallback) ---------------------------------

    def _poll_loads(self, platform: ClientPlatform) -> None:
        """Query each replica's LoadReporter through the control plane.

        Only communication faults are tolerated (reported as stale load —
        the replica keeps its last known value); anything else is a bug and
        propagates.  A failed probe never marks the replica failed: that
        verdict belongs to the binding layer's fault taxonomy alone.
        """
        from repro.core.skeleton import CONTROL_OPERATION
        from repro.qos.base import replica_ids

        for server in replica_ids(platform):
            probe = Request("lb", CONTROL_OPERATION, [CONTROL_LOAD, 0, {}])
            try:
                platform.bind(server)
                load = int(platform.invoke_server(server, probe))
            except (CommunicationError, BindError) as exc:
                self.incr("stale_probes")
                logger.debug("load probe of replica %d failed (%s); keeping stale load",
                             server, exc)
                with self._lock:
                    self._loads.setdefault(server, STALE_LOAD)
                continue
            with self._lock:
                self._loads[server] = load

    def _maybe_poll(self, platform: ClientPlatform) -> None:
        now = self.composite.runtime.clock.now()
        with self._lock:
            due = now - self._last_poll >= self._poll_interval
            if due:
                self._last_poll = now
        if due:
            self._poll_loads(platform)

    # -- passive latency observation ----------------------------------------

    def on_send(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        server: int = occurrence.args[1]
        request.attributes[_ATTR_SENT_AT] = self.composite.runtime.clock.now()
        request.attributes[_ATTR_COUNTED] = server
        with self._lock:
            self._outstanding[server] = self._outstanding.get(server, 0) + 1
        # A send attempt that dies without an invoke event (a halting gate
        # like an open circuit breaker) must still drain the counter.
        request.on_complete(self._drain_outstanding)

    def _drain_outstanding(self, request: Request) -> None:
        server = request.attributes.pop(_ATTR_COUNTED, None)
        if server is None:
            return
        with self._lock:
            self._outstanding[server] = max(0, self._outstanding.get(server, 0) - 1)

    def on_reply(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        server: int = occurrence.args[1]
        self._drain_outstanding(request)
        sent_at = request.attributes.pop(_ATTR_SENT_AT, None)
        if sent_at is None:
            return
        elapsed = max(0.0, self.composite.runtime.clock.now() - sent_at)
        self.record_latency(server, elapsed)

    def on_reply_failure(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        server: int = occurrence.args[1]
        self._drain_outstanding(request)
        request.attributes.pop(_ATTR_SENT_AT, None)
        # Push traffic away from a failing replica without polluting the
        # latency estimate with timeout artefacts.
        with self._lock:
            if server in self._ewma:
                self._ewma[server] *= self._failure_penalty

    def record_latency(self, server: int, seconds: float) -> None:
        """Feed one latency observation into the replica's EWMA."""
        with self._lock:
            current = self._ewma.get(server)
            if current is None:
                self._ewma[server] = seconds
            else:
                self._ewma[server] = current + self._alpha * (seconds - current)

    # -- selection -----------------------------------------------------------

    def _score(self, server: int) -> float:
        # Caller holds self._lock.
        return self._ewma[server] * (1 + self._outstanding.get(server, 0))

    def select(self, candidates: list[int]) -> int:
        """Pick a replica: explore cold ones first, then power-of-two-choices.

        Cold replicas (no latency samples yet) are ranked by the last polled
        load, ties broken by the *incoming candidate order* (the assigner
        pre-ranks candidates by the kernel's latency EWMA when the platform
        has one, so a replica another protocol already measured as fast is
        explored before an arbitrary logical id); warm replicas compete
        pairwise on ``EWMA × (outstanding+1)``.
        """
        with self._lock:
            cold = [s for s in candidates if s not in self._ewma]
            if cold:
                chosen = min(
                    cold, key=lambda s: (self._loads.get(s, 0), candidates.index(s))
                )
                # Optimistically bump so a cold burst spreads instead of
                # dogpiling one replica between polls.
                self._loads[chosen] = self._loads.get(chosen, 0) + 1
                return chosen
            if len(candidates) == 1:
                return candidates[0]
            first, second = self._rng.sample(candidates, 2)
            return first if self._score(first) <= self._score(second) else second

    def lb_assigner(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        platform: ClientPlatform = self.shared.get(SHARED_PLATFORM)
        failed: set = self.shared.get(SHARED_FAILED_SERVERS)
        from repro.qos.base import replica_ids

        candidates = [
            server for server in replica_ids(platform) if server not in failed
        ]
        if not candidates:
            request.fail(ServerFailedError("no live replica for load balancing"))
            occurrence.halt()
            return
        rank = getattr(platform, "rank_servers", None)
        if rank is not None:
            # Kernel latency EWMAs (fed by every successful send on this
            # platform, not just this protocol's) order the cold-start
            # exploration; warm selection below is unaffected.
            candidates = list(rank(candidates))
        with self._lock:
            any_cold = any(s not in self._ewma for s in candidates)
        if any_cold:
            self._maybe_poll(platform)
        chosen = self.select(candidates)
        request.server = chosen
        self.raise_event(EV_READY_TO_SEND, request, chosen)
        occurrence.halt()

    # -- introspection -------------------------------------------------------

    def known_loads(self) -> dict[int, int]:
        with self._lock:
            return dict(self._loads)

    def latency_ewma(self) -> dict[int, float]:
        with self._lock:
            return dict(self._ewma)

    def outstanding(self) -> dict[int, int]:
        with self._lock:
            return dict(self._outstanding)
