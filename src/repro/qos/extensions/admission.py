"""Admission control and traffic enforcement (extension; paper §3.5).

- :class:`RateLimiter` — a token bucket (capacity + refill rate) shared by
  the enforcement protocols, driven by the composite's clock so virtual
  time works in tests; guarded against monotonic-clock regressions and
  safe under concurrent acquirers;
- :class:`AdmissionControl` — a server-side micro-protocol bound early to
  ``readyToInvoke`` that sheds work the server cannot usefully do *before*
  any resource is consumed: beyond the configured rate (global or
  per-priority-class token buckets, so low classes shed first), beyond the
  concurrency budget, beyond the station queue depth, or — when the request
  carries a PB_DEADLINE budget — predicted to miss its deadline given the
  observed service-time EWMA.  Rejections fail the request with the
  wire-safe :class:`~repro.util.errors.AdmissionRejectedError` carrying a
  ``Retry-After``-style hint, which ``RetryBackoff`` clients honour as a
  floor on their next delay instead of hammering the overloaded server.

Slot accounting rides on :meth:`Request.on_complete`, not an
``invokeReturn`` binding: a request that faults mid-pipeline (handler
exception, transport crash, dispatch timeout) still releases its slot
exactly once.
"""

from __future__ import annotations

import threading

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_FIRST, Occurrence
from repro.core.events import EV_NEW_SERVER_REQUEST, EV_READY_TO_INVOKE
from repro.core.request import Request
from repro.qos.timeliness.common import HIGH_PRIORITY_THRESHOLD, is_high_priority
from repro.util.clock import Clock
from repro.util.errors import AdmissionRejectedError
from repro.util.log import get_logger

__all__ = ["AdmissionControl", "AdmissionRejectedError", "RateLimiter", "ORDER_ADMISSION"]

logger = get_logger("qos.admission")


class RateLimiter:
    """A token bucket on an injectable clock.

    Thread-safe; a backwards step of the clock (a regression a virtual
    clock or a suspended VM can produce) is treated as zero elapsed time
    instead of draining the bucket.
    """

    def __init__(self, rate: float, capacity: float, clock: Clock):
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self.rate = rate
        self.capacity = capacity
        self._clock = clock
        self._tokens = capacity
        self._updated = clock.now()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock.now()
        elapsed = max(0.0, now - self._updated)  # clock-regression guard
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        # High-water mark: a rewound clock that later catches back up must
        # not mint tokens for time that never really passed.
        self._updated = max(self._updated, now)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens

    def time_until(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will have refilled (0.0 when available)."""
        with self._lock:
            self._refill()
            deficit = min(tokens, self.capacity) - self._tokens
            return max(0.0, deficit / self.rate)


#: Admission runs after AccessControl (0) and before the schedulers (2):
#: shed load before queuing it.
ORDER_ADMISSION = 1

#: Request attribute recording the admission timestamp (service-time EWMA).
_ATTR_ADMIT_TS = "admission_ts"


@register_micro_protocol("AdmissionControl")
class AdmissionControl(MicroProtocol):
    """Shed requests beyond rate / concurrency / queue / deadline budgets.

    ``class_rates`` maps a minimum priority to a ``(rate, burst)`` token
    bucket; a request draws from the bucket of the highest threshold at or
    below its priority, falling back to the global ``max_rate`` bucket.
    Giving the low classes smaller buckets makes overload shed them first
    while the high classes keep their reserved throughput.

    With ``deadline_aware`` (default), a request carrying a PB_DEADLINE
    whose remaining budget is below the observed service-time EWMA is shed
    up front — the slot it would occupy is guaranteed wasted work.
    """

    name = "AdmissionControl"

    def __init__(
        self,
        max_rate: float | None = None,
        burst: float | None = None,
        max_concurrent: int | None = None,
        max_queue_depth: int | None = None,
        class_rates: dict | None = None,
        deadline_aware: bool = True,
        exempt_high_priority: bool = True,
        high_threshold: int = HIGH_PRIORITY_THRESHOLD,
        service_time_alpha: float = 0.2,
        retry_after_floor: float = 0.05,
        deadline_shed_decay: float = 0.95,
    ):
        super().__init__()
        self._max_rate = max_rate
        self._burst = burst if burst is not None else (max_rate or 1.0)
        self._max_concurrent = max_concurrent
        self._max_queue_depth = max_queue_depth
        self._class_rates = dict(class_rates or {})
        self._deadline_aware = deadline_aware
        self._exempt_high = exempt_high_priority
        self._high_threshold = high_threshold
        self._alpha = service_time_alpha
        self._retry_after_floor = retry_after_floor
        self._deadline_shed_decay = deadline_shed_decay
        self._limiter: RateLimiter | None = None
        #: (min_priority, limiter), highest threshold first.
        self._class_limiters: list = []
        self._in_flight = 0
        self._pending = 0
        self._service_ewma: float | None = None
        self.rejected = 0

    def start(self) -> None:
        clock = self.composite.runtime.clock
        if self._max_rate is not None:
            self._limiter = RateLimiter(self._max_rate, self._burst, clock)
        self._class_limiters = [
            (threshold, RateLimiter(rate, burst, clock))
            for threshold, (rate, burst) in sorted(
                self._class_rates.items(), reverse=True
            )
        ]
        if self._max_queue_depth is not None:
            self.bind(EV_NEW_SERVER_REQUEST, self.track_arrival, order=ORDER_FIRST)
        self.bind(EV_READY_TO_INVOKE, self.admit, order=ORDER_ADMISSION)

    # -- queue-depth tracking ------------------------------------------------

    def track_arrival(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        with self.shared.lock:
            self._pending += 1
        request.on_complete(self._departed)

    def _departed(self, request: Request) -> None:
        with self.shared.lock:
            self._pending = max(0, self._pending - 1)

    # -- admission -----------------------------------------------------------

    def _limiter_for(self, request: Request) -> RateLimiter | None:
        for threshold, limiter in self._class_limiters:
            if request.priority >= threshold:
                return limiter
        return self._limiter

    def _shed(self, occurrence: Occurrence, request: Request, reason: str,
              retry_after: float) -> None:
        with self.shared.lock:
            self.rejected += 1
            # Congestion-probe decay: the service-time EWMA only refreshes
            # from *admitted* requests, so an estimate inflated past every
            # client's budget during a surge would otherwise shed forever.
            # Each deadline shed decays it until a probe gets through and
            # re-measures reality (self-healing after overload drains).
            if reason == "deadline" and self._service_ewma is not None:
                self._service_ewma *= self._deadline_shed_decay
        self.incr("rejected")
        self.incr(f"shed_{reason}")
        logger.warning(
            "admission control shed %s from %s (%s budget)",
            request.operation, request.client_id or "<anonymous>", reason,
        )
        request.fail(
            AdmissionRejectedError(
                f"request shed by admission control ({reason} budget)",
                retry_after=max(retry_after, 0.0),
            )
        )
        occurrence.halt_all()

    def admit(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        clock = self.composite.runtime.clock
        now = clock.now()
        if self._exempt_high and is_high_priority(request, self._high_threshold):
            self._admit(request, now)
            return
        with self.shared.lock:
            ewma = self._service_ewma
            pending = self._pending
            over_concurrency = (
                self._max_concurrent is not None
                and self._in_flight >= self._max_concurrent
            )
        hint = ewma if ewma is not None else self._retry_after_floor
        # Deadline-aware pre-check: shed doomed work before it costs a
        # token or a slot (DeadlineShed only catches *already expired*
        # requests; this predicts the miss).
        if self._deadline_aware and ewma is not None:
            remaining = request.remaining_budget(now)
            if remaining is not None and remaining < ewma:
                self._shed(occurrence, request, "deadline", hint)
                return
        if self._max_queue_depth is not None and pending > self._max_queue_depth:
            self._shed(occurrence, request, "queue", hint)
            return
        if over_concurrency:
            self._shed(occurrence, request, "concurrency", hint)
            return
        limiter = self._limiter_for(request)
        if limiter is not None and not limiter.try_acquire():
            self._shed(occurrence, request, "rate", max(limiter.time_until(), hint))
            return
        self._admit(request, now)

    def _admit(self, request: Request, now: float) -> None:
        with self.shared.lock:
            self._in_flight += 1
        request.attributes["admitted"] = True
        request.attributes[_ATTR_ADMIT_TS] = now
        self.incr("admitted")
        # on_complete (not invokeReturn) so a fault anywhere downstream —
        # handler exception, transport crash, dispatch timeout — still
        # releases the slot exactly once.
        request.on_complete(self._release)

    def _release(self, request: Request) -> None:
        if not request.attributes.pop("admitted", False):
            return
        admitted_at = request.attributes.pop(_ATTR_ADMIT_TS, None)
        with self.shared.lock:
            self._in_flight = max(0, self._in_flight - 1)
            if admitted_at is not None:
                sample = max(0.0, self.composite.runtime.clock.now() - admitted_at)
                if self._service_ewma is None:
                    self._service_ewma = sample
                else:
                    self._service_ewma += self._alpha * (sample - self._service_ewma)

    # -- introspection -------------------------------------------------------

    def in_flight(self) -> int:
        with self.shared.lock:
            return self._in_flight

    def queue_depth(self) -> int:
        with self.shared.lock:
            return self._pending

    def service_time_ewma(self) -> float | None:
        with self.shared.lock:
            return self._service_ewma
