"""Admission control and traffic enforcement (extension; paper §3.5).

- :class:`RateLimiter` — a token bucket (capacity + refill rate) shared by
  the enforcement protocols, driven by the composite's clock so virtual
  time works in tests;
- :class:`AdmissionControl` — a server-side micro-protocol bound early to
  ``readyToInvoke`` that rejects work beyond the configured rate and/or
  concurrency, completing the request with
  :class:`~repro.util.errors.ReproError` before any resource is consumed.
  Optionally exempts high-priority requests (admission control as a
  timeliness attribute: shed load from the low classes first).
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_LAST, Occurrence
from repro.core.events import EV_INVOKE_RETURN, EV_READY_TO_INVOKE
from repro.core.request import Request
from repro.qos.timeliness.common import HIGH_PRIORITY_THRESHOLD, is_high_priority
from repro.util.clock import Clock
from repro.util.errors import ReproError
from repro.util.log import get_logger

logger = get_logger("qos.admission")


class AdmissionRejectedError(ReproError):
    """The server shed this request before executing it."""


class RateLimiter:
    """A token bucket on an injectable clock."""

    def __init__(self, rate: float, capacity: float, clock: Clock):
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self.rate = rate
        self.capacity = capacity
        self._clock = clock
        self._tokens = capacity
        self._updated = clock.now()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        now = self._clock.now()
        self._tokens = min(self.capacity, self._tokens + (now - self._updated) * self.rate)
        self._updated = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def available(self) -> float:
        now = self._clock.now()
        return min(self.capacity, self._tokens + (now - self._updated) * self.rate)


#: Admission runs after AccessControl (0) and before the schedulers (2):
#: shed load before queuing it.
ORDER_ADMISSION = 1


@register_micro_protocol("AdmissionControl")
class AdmissionControl(MicroProtocol):
    """Reject requests beyond a rate and/or concurrency budget."""

    name = "AdmissionControl"

    def __init__(
        self,
        max_rate: float | None = None,
        burst: float | None = None,
        max_concurrent: int | None = None,
        exempt_high_priority: bool = True,
        high_threshold: int = HIGH_PRIORITY_THRESHOLD,
    ):
        super().__init__()
        self._max_rate = max_rate
        self._burst = burst if burst is not None else (max_rate or 1.0)
        self._max_concurrent = max_concurrent
        self._exempt_high = exempt_high_priority
        self._high_threshold = high_threshold
        self._limiter: RateLimiter | None = None
        self._in_flight = 0
        self.rejected = 0

    def start(self) -> None:
        if self._max_rate is not None:
            self._limiter = RateLimiter(
                self._max_rate, self._burst, self.composite.runtime.clock
            )
        self.bind(EV_READY_TO_INVOKE, self.admit, order=ORDER_ADMISSION)
        self.bind(EV_INVOKE_RETURN, self.release, order=ORDER_LAST)

    def admit(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        if self._exempt_high and is_high_priority(request, self._high_threshold):
            with self.shared.lock:
                self._in_flight += 1
                request.attributes["admitted"] = True
            return
        with self.shared.lock:
            over_concurrency = (
                self._max_concurrent is not None
                and self._in_flight >= self._max_concurrent
            )
            over_rate = self._limiter is not None and not self._limiter.try_acquire()
            if over_concurrency or over_rate:
                self.rejected += 1
                reason = "concurrency" if over_concurrency else "rate"
                logger.warning(
                    "admission control shed %s from %s (%s budget)",
                    request.operation, request.client_id or "<anonymous>", reason,
                )
                request.fail(
                    AdmissionRejectedError(
                        f"request shed by admission control ({reason} budget)"
                    )
                )
                occurrence.halt_all()
                return
            self._in_flight += 1
            request.attributes["admitted"] = True

    def release(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        if request.attributes.pop("admitted", False):
            with self.shared.lock:
                self._in_flight = max(0, self._in_flight - 1)

    def in_flight(self) -> int:
        with self.shared.lock:
            return self._in_flight
