"""A CactusBuilder-style configuration builder (paper §2.3.3).

"While this customization must currently be done using a programming
interface, a graphical tool similar to the CactusBuilder could be developed
to facilitate the process."  This is that tool, minus the pixels: a fluent
builder that turns *attribute-level* choices (the vocabulary of the
composability matrix) into validated, matched client/server micro-protocol
configurations — as instances, as :class:`MicroProtocolSpec` lists for the
dynamic path, or as the text config-file format.

    spec = (QosBuilder()
            .fault_tolerance("active", acceptance="vote", total_order=True)
            .privacy(key_hex="0123456789abcdef")
            .integrity(key_hex="99aabbccddeeff00")
            .timeliness("timed", period=0.05, high_rate_threshold=2)
            .build())
    deployment.add_replicas(..., server_micro_protocols=spec.server_factory())
    deployment.client_stub(..., client_micro_protocols=spec.client_factory())
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.cactus.config import MicroProtocolSpec, build_micro_protocols
from repro.qos.combinations import validate_configuration
from repro.util.errors import ConfigurationError


def _freeze(value: Any) -> Any:
    """Recursively hashable view of a spec parameter value."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    return value


def spec_fingerprint(specs: list[MicroProtocolSpec] | tuple[MicroProtocolSpec, ...]) -> tuple:
    """Order-sensitive identity of a micro-protocol configuration."""
    return tuple((spec.name, _freeze(spec.params)) for spec in specs)


# Sealed dispatch plans, one per distinct QoS combination ever built.
# Repeated deployments of the same combination (the common case: every
# replica and every client of a service shares one configuration) reuse the
# validated spec layout instead of re-assembling and re-validating it; the
# per-event compiled handler chains then compile once per composite from
# that layout (chains hold bound methods of per-instance micro-protocols,
# so the chain itself cannot cross composites — the plan is what can).
_plan_lock = threading.Lock()
_plan_cache: dict[tuple, "QosSpec"] = {}
_plan_stats = {"hits": 0, "misses": 0}


def dispatch_plan_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the sealed-plan cache (for tests/benchmarks)."""
    with _plan_lock:
        return dict(_plan_stats, size=len(_plan_cache))


def clear_dispatch_plan_cache() -> None:
    with _plan_lock:
        _plan_cache.clear()
        _plan_stats["hits"] = 0
        _plan_stats["misses"] = 0

_FT_CHOICES = ("none", "active", "passive")
_ACCEPTANCE_CHOICES = (None, "first", "success", "vote")
_TIMELINESS_CHOICES = (None, "priority", "queued", "timed")
_SHED_POLICIES = (None, "low-priority-first", "deadline", "fair")


@dataclass
class QosSpec:
    """A validated pair of client/server configurations.

    Instances returned by :meth:`QosBuilder.build` are *sealed* (cached and
    shared across deployments keyed by :meth:`fingerprint`); treat the spec
    lists as read-only and build a fresh spec for a different combination.
    """

    client_specs: list[MicroProtocolSpec] = field(default_factory=list)
    server_specs: list[MicroProtocolSpec] = field(default_factory=list)
    #: Replica placement (a :class:`~repro.core.routing.view.Placement`), or
    #: None for the deployment default.  A QoS attribute like any other —
    #: *where* an object's replicas live is part of its service contract
    #: (RAFDA-style: policy is declared, never coded into the servant).
    placement: Any = None

    def fingerprint(self) -> tuple:
        """Stable identity of this combination (the plan-cache key)."""
        return (
            spec_fingerprint(self.client_specs),
            spec_fingerprint(self.server_specs),
            _freeze(self.placement.to_wire()) if self.placement is not None else None,
        )

    def client_factory(self):
        """Zero-arg factory for ``CqosDeployment.client_stub``."""
        return lambda: build_micro_protocols(self.client_specs)

    def server_factory(self):
        """Zero-arg factory for ``CqosDeployment.add_replicas``."""
        return lambda: build_micro_protocols(self.server_specs)

    def client_config_text(self) -> str:
        """The client half in the config-file format."""
        return _to_text(self.client_specs)

    def server_config_text(self) -> str:
        """The server half in the config-file format."""
        return _to_text(self.server_specs)


def _to_text(specs: list[MicroProtocolSpec]) -> str:
    lines = []
    for spec in specs:
        params = " ".join(f"{k}={v}" for k, v in spec.params.items())
        lines.append(f"{spec.name} {params}".strip())
    return "\n".join(lines) + ("\n" if lines else "")


class QosBuilder:
    """Fluent assembly of a QoS configuration; ``build()`` validates."""

    def __init__(self) -> None:
        self._ft = "none"
        self._acceptance: str | None = None
        self._total_order = False
        self._total_order_params: dict[str, Any] = {}
        self._privacy: dict[str, Any] | None = None
        self._integrity: dict[str, Any] | None = None
        self._access: dict[str, Any] | None = None
        self._timeliness: str | None = None
        self._timeliness_params: dict[str, Any] = {}
        self._slo: dict[str, Any] | None = None
        self._caching: dict[str, Any] | None = None
        self._balance: dict[str, Any] | None = None
        self._placement: Any = None
        self._extras_client: list[MicroProtocolSpec] = []
        self._extras_server: list[MicroProtocolSpec] = []

    # -- fault tolerance ---------------------------------------------------

    def fault_tolerance(
        self,
        style: str,
        acceptance: str | None = None,
        total_order: bool = False,
        order_timeout: float | None = None,
    ) -> "QosBuilder":
        """``style``: none | active | passive.

        ``acceptance`` (active only): first | success | vote.
        ``total_order`` (active only): sequencer-based consistent ordering.
        """
        if style not in _FT_CHOICES:
            raise ConfigurationError(f"fault_tolerance style must be one of {_FT_CHOICES}")
        if acceptance not in _ACCEPTANCE_CHOICES:
            raise ConfigurationError(f"acceptance must be one of {_ACCEPTANCE_CHOICES}")
        if style != "active" and (acceptance not in (None, "first") or total_order):
            raise ConfigurationError(
                "acceptance semantics and total order require active replication"
            )
        self._ft = style
        self._acceptance = acceptance
        self._total_order = total_order
        if order_timeout is not None:
            self._total_order_params["order_timeout"] = order_timeout
        return self

    # -- security ---------------------------------------------------------------

    def privacy(self, key_hex: str) -> "QosBuilder":
        self._privacy = {"key_hex": key_hex}
        return self

    def integrity(self, key_hex: str) -> "QosBuilder":
        self._integrity = {"key_hex": key_hex}
        return self

    def access_control(self, acl: dict, default_allow: bool = True) -> "QosBuilder":
        self._access = {"acl": acl, "default_allow": default_allow}
        return self

    # -- timeliness ----------------------------------------------------------------

    def timeliness(self, style: str | None, **params: Any) -> "QosBuilder":
        """``style``: priority | queued | timed (or None)."""
        if style not in _TIMELINESS_CHOICES:
            raise ConfigurationError(f"timeliness must be one of {_TIMELINESS_CHOICES}")
        self._timeliness = style
        self._timeliness_params = params
        return self

    # -- overload protection (SLO-declared, RAFDA-style: policy lives here,
    # -- never in servant code) ------------------------------------------------------

    def slo(
        self,
        slo_p99: float | None = None,
        max_inflight: int | None = None,
        shed_policy: str | None = None,
        max_rate: float | None = None,
        burst: float | None = None,
        max_queue_depth: int | None = None,
        class_rates: dict | None = None,
    ) -> "QosBuilder":
        """Declare the object's service-level objective.

        ``slo_p99`` (seconds) becomes a client-side DeadlineBudget plus
        server-side DeadlineShed and deadline-aware admission; ``max_inflight``
        caps server concurrency; ``shed_policy`` picks who sheds first:
        ``"low-priority-first"`` (high classes exempt), ``"deadline"``
        (predictive shedding of doomed requests only — requires ``slo_p99``),
        or ``"fair"`` (everyone equal).
        """
        if shed_policy not in _SHED_POLICIES:
            raise ConfigurationError(f"shed_policy must be one of {_SHED_POLICIES}")
        if shed_policy == "deadline" and slo_p99 is None:
            raise ConfigurationError(
                "shed_policy='deadline' requires slo_p99: without a deadline "
                "budget there is no remaining time to predict against — "
                "declare slo(slo_p99=...) or pick another shed policy"
            )
        self._slo = {
            "slo_p99": slo_p99,
            "max_inflight": max_inflight,
            "shed_policy": shed_policy,
            "max_rate": max_rate,
            "burst": burst,
            "max_queue_depth": max_queue_depth,
            "class_rates": class_rates,
        }
        return self

    def caching(
        self,
        read_operations: list | tuple,
        ttl: float = 0.0,
        invalidation: bool = True,
        stale_while_shedding: bool = False,
    ) -> "QosBuilder":
        """Client-side result cache, paired (by default) with the
        server-side CacheInvalidator for event-driven per-key coherence."""
        if stale_while_shedding and self._slo is None:
            raise ConfigurationError(
                "caching(stale_while_shedding=True) requires a declared "
                "slo(...): without admission control nothing ever sheds, so "
                "the stale path is dead configuration — declare the SLO "
                "first (builder order: slo() before caching())"
            )
        self._caching = {
            "read_operations": tuple(read_operations),
            "ttl": ttl,
            "invalidation": invalidation,
            "stale_while_shedding": stale_while_shedding,
        }
        return self

    def load_balance(
        self, poll_interval: float = 0.25, seed: int | None = None
    ) -> "QosBuilder":
        """Latency-EWMA replica balancing (client) + load reporting (server)."""
        self._balance = {"poll_interval": poll_interval, "seed": seed}
        return self

    # -- placement (sharded deployments) ---------------------------------------

    def placement(
        self,
        replication_factor: int = 1,
        policy: str = "ring",
        groups: tuple | list = (),
        logical_ids: tuple | list = (),
    ) -> "QosBuilder":
        """Declare where the object's replicas live (sharded deployments).

        ``policy``: ``"ring"`` (pack into the owner group), ``"spread"``
        (one replica per distinct group) or ``"pinned"`` (explicit
        ``groups``).  Cross-validated against the fault-tolerance choice at
        build time: replication styles need enough replicas to matter.
        Ignored by unsharded deployments.
        """
        from repro.core.routing import Placement

        self._placement = Placement(
            replication_factor=replication_factor,
            policy=policy,
            groups=tuple(groups),
            logical_ids=tuple(int(i) for i in logical_ids),
        )
        return self

    # -- escape hatch ----------------------------------------------------------------

    def extra(self, side: str, name: str, **params: Any) -> "QosBuilder":
        """Append an arbitrary registered micro-protocol to one side."""
        spec = MicroProtocolSpec(name, params)
        if side == "client":
            self._extras_client.append(spec)
        elif side == "server":
            self._extras_server.append(spec)
        else:
            raise ConfigurationError("side must be 'client' or 'server'")
        return self

    # -- assembly ---------------------------------------------------------------------

    def build(self, use_cache: bool = True) -> QosSpec:
        """Assemble and validate the configuration pair.

        With ``use_cache`` (default), identical combinations return the one
        sealed :class:`QosSpec` from the process-wide dispatch-plan cache,
        so repeated deployments skip re-assembly and matrix re-validation.
        """
        if not use_cache:
            return self._assemble()
        key = self._choice_key()
        with _plan_lock:
            cached = _plan_cache.get(key)
            if cached is not None:
                _plan_stats["hits"] += 1
                return cached
        spec = self._assemble()
        with _plan_lock:
            _plan_stats["misses"] += 1
            _plan_cache.setdefault(key, spec)
            spec = _plan_cache[key]
        return spec

    def _choice_key(self) -> tuple:
        """Hashable identity of every attribute-level choice made so far."""
        return (
            self._ft,
            self._acceptance,
            self._total_order,
            _freeze(self._total_order_params),
            _freeze(self._privacy),
            _freeze(self._integrity),
            _freeze(self._access),
            self._timeliness,
            _freeze(self._timeliness_params),
            _freeze(self._slo),
            _freeze(self._caching),
            _freeze(self._balance),
            _freeze(self._placement.to_wire()) if self._placement is not None else None,
            spec_fingerprint(self._extras_client),
            spec_fingerprint(self._extras_server),
        )

    def _assemble(self) -> QosSpec:
        client: list[MicroProtocolSpec] = []
        server: list[MicroProtocolSpec] = []

        if self._ft == "active":
            client.append(MicroProtocolSpec("ActiveRep"))
            if self._acceptance == "success":
                client.append(MicroProtocolSpec("FirstSuccess"))
            elif self._acceptance == "vote":
                client.append(MicroProtocolSpec("MajorityVote"))
            if self._total_order:
                server.append(MicroProtocolSpec("TotalOrder", dict(self._total_order_params)))
        elif self._ft == "passive":
            client.append(MicroProtocolSpec("PassiveRep"))
            server.append(MicroProtocolSpec("PassiveRepServer"))

        if self._privacy is not None:
            client.append(MicroProtocolSpec("DesPrivacy", dict(self._privacy)))
            server.append(MicroProtocolSpec("DesPrivacyServer", dict(self._privacy)))
        if self._integrity is not None:
            client.append(MicroProtocolSpec("SignedIntegrity", dict(self._integrity)))
            server.append(MicroProtocolSpec("SignedIntegrityServer", dict(self._integrity)))
        if self._access is not None:
            server.append(MicroProtocolSpec("AccessControl", dict(self._access)))

        if self._timeliness == "priority":
            server.append(MicroProtocolSpec("PrioritySched"))
        elif self._timeliness == "queued":
            server.append(MicroProtocolSpec("QueuedSched", dict(self._timeliness_params)))
        elif self._timeliness == "timed":
            server.append(MicroProtocolSpec("TimedSched", dict(self._timeliness_params)))

        # Overload-protection stack.  Composition order (see DESIGN.md §12):
        # client budget -> cache -> balancer; server admission -> shed.
        if self._slo is not None:
            slo = self._slo
            if slo["slo_p99"] is not None:
                client.append(MicroProtocolSpec("DeadlineBudget", {"budget": slo["slo_p99"]}))
                server.append(MicroProtocolSpec("DeadlineShed"))
            admission: dict[str, Any] = {
                "deadline_aware": slo["slo_p99"] is not None,
                "exempt_high_priority": slo["shed_policy"] == "low-priority-first",
            }
            for param in ("max_rate", "burst", "max_queue_depth", "class_rates"):
                if slo[param] is not None:
                    admission[param] = slo[param]
            if slo["max_inflight"] is not None:
                admission["max_concurrent"] = slo["max_inflight"]
            server.append(MicroProtocolSpec("AdmissionControl", admission))
        if self._caching is not None:
            caching = self._caching
            client.append(
                MicroProtocolSpec(
                    "ClientCache",
                    {
                        "read_operations": caching["read_operations"],
                        "ttl": caching["ttl"],
                        "stale_while_shedding": caching["stale_while_shedding"],
                    },
                )
            )
            if caching["invalidation"]:
                server.append(
                    MicroProtocolSpec(
                        "CacheInvalidator",
                        {"read_operations": caching["read_operations"]},
                    )
                )
        if self._balance is not None:
            client.append(MicroProtocolSpec("LoadBalance", dict(self._balance)))
            server.append(MicroProtocolSpec("LoadReporter"))

        client.extend(self._extras_client)
        server.extend(self._extras_server)

        if self._placement is not None:
            rf = self._placement.replication_factor
            if self._ft != "none" and rf < 2:
                raise ConfigurationError(
                    f"fault_tolerance('{self._ft}') with replication_factor="
                    f"{rf} is dead configuration — replication needs at "
                    "least 2 replicas to survive a failure"
                )
            if self._acceptance == "vote" and rf < 3:
                raise ConfigurationError(
                    "acceptance='vote' needs replication_factor >= 3: a "
                    "majority of 2 is both replicas, so voting adds nothing "
                    "over acceptance='success'"
                )

        validate_configuration(
            [spec.name for spec in client], [spec.name for spec in server]
        )
        return QosSpec(
            client_specs=client, server_specs=server, placement=self._placement
        )
