"""Rate-aware service differentiation (§3.4).

"The third micro-protocol, TimedSched, uses a similar strategy [to
QueuedSched], except that it keeps track of how many high priority requests
have arrived in a time period and only releases the low priority requests
(one at a time), when the number of high priority requests in the previous
period was smaller than a threshold."

So where QueuedSched reacts to *concurrency* (lows wait only while a high
is executing), TimedSched reacts to *load*: a busy window of high-priority
arrivals keeps lows queued for at least the next window, and even in quiet
windows lows trickle out one at a time — the strongest protection of the
three, which is why it is the one Table 3 measures.

Time-driven behaviour uses Cactus delayed raises (a ``timedTick`` event
re-armed each period).
"""

from __future__ import annotations

from collections import deque

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_LAST, Occurrence
from repro.core.events import EV_INVOKE_RETURN, EV_READY_TO_INVOKE, EV_REQUEST_RETURNED
from repro.core.request import Request
from repro.qos.timeliness.common import (
    ATTR_ADMITTED,
    ATTR_RELEASED,
    HIGH_PRIORITY_THRESHOLD,
    LOW_PRIORITY,
    ORDER_SCHED,
    is_high_priority,
)

EV_TIMED_TICK = "timedTick"


@register_micro_protocol("TimedSched")
class TimedSched(MicroProtocol):
    """Release queued lows one at a time, only after quiet windows."""

    name = "TimedSched"

    def __init__(
        self,
        period: float = 0.05,
        high_rate_threshold: int = 2,
        high_threshold: int = HIGH_PRIORITY_THRESHOLD,
    ):
        """``high_rate_threshold``: highs per ``period`` that count as busy."""
        super().__init__()
        self._period = period
        self._rate_threshold = high_rate_threshold
        self._priority_threshold = high_threshold
        self._stopped = False
        # Protected by self.shared.lock:
        self._current_count = 0
        self._previous_count = 0
        self._queue: deque[Request] = deque()
        self._low_running = False

    def start(self) -> None:
        self.bind(EV_READY_TO_INVOKE, self.check_priority, order=ORDER_SCHED)
        self.bind(EV_INVOKE_RETURN, self.on_return, order=ORDER_LAST)
        self.bind(EV_REQUEST_RETURNED, self.wakeup_next)
        self.bind(EV_TIMED_TICK, self.on_tick)
        self.raise_event(EV_TIMED_TICK, delay=self._period)

    def stop(self) -> None:
        self._stopped = True
        super().stop()

    # -- admission ---------------------------------------------------------

    def _may_release_low(self) -> bool:
        """Call with the shared lock held."""
        return self._previous_count < self._rate_threshold and not self._low_running

    def check_priority(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        with self.shared.lock:
            if request.attributes.get(ATTR_ADMITTED):
                return  # re-dispatched by another protocol; already admitted
            if is_high_priority(request, self._priority_threshold):
                self._current_count += 1
                request.attributes[ATTR_ADMITTED] = True
                return
            if request.attributes.pop(ATTR_RELEASED, False):
                request.attributes[ATTR_ADMITTED] = True
                return  # released by wakeup_next; _low_running already set
            if self._may_release_low():
                self._low_running = True
                request.attributes[ATTR_ADMITTED] = True
                return
            self._queue.append(request)
            occurrence.halt()

    # -- release machinery ----------------------------------------------------

    def on_return(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        wake = False
        with self.shared.lock:
            if not is_high_priority(request, self._priority_threshold):
                self._low_running = False
            wake = bool(self._queue) and self._may_release_low()
        if wake:
            self.raise_event(
                EV_REQUEST_RETURNED, request, mode="async", priority=LOW_PRIORITY
            )

    def wakeup_next(self, occurrence: Occurrence) -> None:
        """Release exactly one queued low-priority request."""
        released: Request | None = None
        with self.shared.lock:
            if self._queue and self._may_release_low():
                released = self._queue.popleft()
                self._low_running = True
        if released is not None:
            released.attributes[ATTR_RELEASED] = True
            self.raise_event(
                EV_READY_TO_INVOKE, released, mode="async", priority=LOW_PRIORITY
            )

    def on_tick(self, occurrence: Occurrence) -> None:
        if self._stopped:
            return
        wake = False
        with self.shared.lock:
            self._previous_count = self._current_count
            self._current_count = 0
            wake = bool(self._queue) and self._may_release_low()
        if wake:
            self.raise_event(EV_REQUEST_RETURNED, None, mode="async", priority=LOW_PRIORITY)
        if not self._stopped:
            self.raise_event(EV_TIMED_TICK, delay=self._period)

    # -- introspection (tests) ----------------------------------------------------

    def queued_count(self) -> int:
        with self.shared.lock:
            return len(self._queue)
