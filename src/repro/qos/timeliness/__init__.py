"""Timeliness / service-differentiation micro-protocols (paper section 3.4).

"Providing rigorous timeliness guarantees is difficult … However, service
differentiation properties that provide more timely service to high
priority requests can be implemented as relatively simple micro-protocols."

- :class:`~repro.qos.timeliness.priority.PrioritySched` — maps the request
  priority onto the executing thread's priority, as early as possible;
- :class:`~repro.qos.timeliness.queued.QueuedSched` — queues low-priority
  requests while high-priority requests are executing;
- :class:`~repro.qos.timeliness.timed.TimedSched` — rate-aware variant:
  releases queued low-priority requests one at a time only when the
  previous time window saw fewer high-priority arrivals than a threshold.

The request's priority comes from the server-side priority policy (client
identity, per the paper) or the piggybacked value; the
:data:`HIGH_PRIORITY_THRESHOLD` boundary classifies it.  The scheduling
handlers bind to ``readyToInvoke`` *before* TotalOrder's sequencing, which
is the paper's resolution of the ordering/differentiation conflict when the
differentiation protocols run at the ordering coordinator.
"""

from repro.qos.timeliness.priority import PrioritySched
from repro.qos.timeliness.queued import QueuedSched
from repro.qos.timeliness.timed import TimedSched
from repro.qos.timeliness.common import (
    HIGH_PRIORITY,
    HIGH_PRIORITY_THRESHOLD,
    LOW_PRIORITY,
    is_high_priority,
)

__all__ = [
    "PrioritySched",
    "QueuedSched",
    "TimedSched",
    "HIGH_PRIORITY",
    "LOW_PRIORITY",
    "HIGH_PRIORITY_THRESHOLD",
    "is_high_priority",
]
