"""Thread-priority scheduling (§3.4).

"The first, PrioritySched, manipulates thread priorities.  It consists of
one handler setPriority bound to readyToInvoke that sets the priority of
the current thread based on the request priority.  It is set to execute as
the first handler for this event so that it can change the priority as
early as possible."

With the Cactus runtime's priority preservation, every event raised from
this point on — including the asynchronous raises of replication and
ordering protocols — executes at the request's priority, so high-priority
requests jump the runtime's work queues.
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_FIRST, Occurrence
from repro.core.events import EV_READY_TO_INVOKE
from repro.core.request import Request
from repro.util.concurrency import set_thread_priority


@register_micro_protocol("PrioritySched")
class PrioritySched(MicroProtocol):
    """Execute each request at its own thread priority."""

    name = "PrioritySched"

    def start(self) -> None:
        self.bind(EV_READY_TO_INVOKE, self.set_priority, order=ORDER_FIRST)

    def set_priority(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        set_thread_priority(request.priority)
