"""Shared priority conventions for the timeliness micro-protocols."""

from __future__ import annotations

from repro.core.request import Request

#: Conventional request priorities on the 1..10 thread-priority scale.
HIGH_PRIORITY = 8
LOW_PRIORITY = 2

#: Requests at or above this priority are treated as "high priority" by the
#: queue-based schedulers.
HIGH_PRIORITY_THRESHOLD = 6

#: Request attribute marking a request released from a scheduler's queue so
#: the re-raised readyToInvoke passes the admission check.
ATTR_RELEASED = "sched_released"

#: Sticky attribute: the request already passed admission once.  Protocols
#: that re-dispatch readyToInvoke for their own reasons (TotalOrder releasing
#: a parked request) must not send an admitted request back through the
#: scheduler queue — that deadlocks both protocols (the request holds a
#: sequence number the ordering is waiting on while it sits in the
#: scheduler's queue).
ATTR_ADMITTED = "sched_admitted"

#: Order (on readyToInvoke) of the scheduling admission handlers: after
#: AccessControl (0), before TotalOrder's sequencing (5/10) — queuing before
#: ordering, the paper's conflict resolution for the coordinator.
ORDER_SCHED = 2


def is_high_priority(request: Request, threshold: int = HIGH_PRIORITY_THRESHOLD) -> bool:
    """Classify a request by its (policy- or piggyback-derived) priority."""
    return request.priority >= threshold
