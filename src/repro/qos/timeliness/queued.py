"""Queue-based service differentiation (§3.4).

"The second, QueuedSched, schedules request execution by queuing low
priority requests if high priority requests are executing."  The paper's
three handlers, one-to-one:

- **checkPriority** (``readyToInvoke``) — admits a request or queues it;
- **notifyWaiting** (``invokeReturn``, bound last) — "raises
  requestReturned asynchronously with a low thread priority if no high
  priority requests remain to execute" (the modified raise() operation: the
  wakeup must not steal cycles from the thread returning the high-priority
  reply);
- **wakeupNext** (``requestReturned``) — releases the waiting low-priority
  requests.

Queuing works by halting the ``readyToInvoke`` chain: the servant is not
invoked and the middleware dispatch thread stays blocked in
``cactus_invoke`` until the release re-raises the event — the low-priority
*client* waits, nobody busy-waits.
"""

from __future__ import annotations

from collections import deque

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_LAST, Occurrence
from repro.core.events import EV_INVOKE_RETURN, EV_READY_TO_INVOKE, EV_REQUEST_RETURNED
from repro.core.request import Request
from repro.qos.timeliness.common import (
    ATTR_ADMITTED,
    ATTR_RELEASED,
    HIGH_PRIORITY_THRESHOLD,
    LOW_PRIORITY,
    ORDER_SCHED,
    is_high_priority,
)


@register_micro_protocol("QueuedSched")
class QueuedSched(MicroProtocol):
    """Queue low-priority requests while high-priority ones execute."""

    name = "QueuedSched"

    def __init__(self, high_threshold: int = HIGH_PRIORITY_THRESHOLD):
        super().__init__()
        self._threshold = high_threshold
        # Protected by self.shared.lock:
        self._active_high = 0
        self._queue: deque[Request] = deque()

    def start(self) -> None:
        self.bind(EV_READY_TO_INVOKE, self.check_priority, order=ORDER_SCHED)
        self.bind(EV_INVOKE_RETURN, self.notify_waiting, order=ORDER_LAST)
        self.bind(EV_REQUEST_RETURNED, self.wakeup_next)

    # -- handlers ---------------------------------------------------------

    def check_priority(self, occurrence: Occurrence) -> None:
        """Admit high-priority requests; queue lows behind active highs."""
        request: Request = occurrence.args[0]
        with self.shared.lock:
            if request.attributes.get(ATTR_ADMITTED):
                return  # re-dispatched by another protocol; already admitted
            if is_high_priority(request, self._threshold):
                self._active_high += 1
                request.attributes[ATTR_ADMITTED] = True
                return
            if request.attributes.pop(ATTR_RELEASED, False):
                request.attributes[ATTR_ADMITTED] = True
                return
            if self._active_high > 0:
                self._queue.append(request)
                occurrence.halt()
            else:
                request.attributes[ATTR_ADMITTED] = True

    def notify_waiting(self, occurrence: Occurrence) -> None:
        """On completion of a high request, maybe wake the queue."""
        request: Request = occurrence.args[0]
        wake = False
        with self.shared.lock:
            if is_high_priority(request, self._threshold):
                self._active_high -= 1
                wake = self._active_high == 0 and bool(self._queue)
        if wake:
            self.raise_event(
                EV_REQUEST_RETURNED, request, mode="async", priority=LOW_PRIORITY
            )

    def wakeup_next(self, occurrence: Occurrence) -> None:
        """Release every queued low-priority request."""
        released: list[Request] = []
        with self.shared.lock:
            if self._active_high > 0:
                return  # a new high arrived since the wakeup was scheduled
            while self._queue:
                released.append(self._queue.popleft())
        for request in released:
            request.attributes[ATTR_RELEASED] = True
            self.raise_event(
                EV_READY_TO_INVOKE, request, mode="async", priority=LOW_PRIORITY
            )

    # -- introspection (tests) ----------------------------------------------

    def queued_count(self) -> int:
        with self.shared.lock:
            return len(self._queue)

    def active_high(self) -> int:
        with self.shared.lock:
            return self._active_high
