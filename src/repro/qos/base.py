"""Base micro-protocols: ClientBase and ServerBase (paper section 3.1).

"Note that the basic behavior is broken into multiple handlers with events
used to pass the control from one handler to another.  This allows the
actual QoS micro-protocols to insert their processing at the appropriate
points of the control flow.  All the handlers in the base micro-protocols
have been ordered to be the last ones to be executed when its respective
event is raised."

ClientBase handlers:

- **assigner** (``newRequest``, last) — assigns a server and raises
  ``readyToSend``;
- **syncInvoker** (``readyToSend``, last) — checks ``server_status()``,
  ``bind()``s if necessary, calls ``invoke_server()``, raises
  ``invokeSuccess`` or ``invokeFailure``;
- **resultReturner** (``invokeSuccess``+``invokeFailure``, last) — default
  acceptance: the first reply (success or failure) releases the waiting
  client thread.

ServerBase handlers:

- **getParameters** (``newServerRequest``, last) — extracts Cactus
  parameters (notably the request priority, resolved through the
  configured policy) and raises ``readyToInvoke``;
- **invokeServant** (``readyToInvoke``, last) — calls
  ``invoke_servant()``, raises ``invokeReturn``, then completes the
  request (releasing the dispatch thread so the reply can be sent).
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_LAST, Occurrence
from repro.core.events import (
    EV_INVOKE_FAILURE,
    EV_INVOKE_RETURN,
    EV_INVOKE_SUCCESS,
    EV_NEW_REQUEST,
    EV_NEW_SERVER_REQUEST,
    EV_READY_TO_INVOKE,
    EV_READY_TO_SEND,
)
from repro.core.client import SHARED_FAILED_SERVERS, SHARED_PLATFORM
from repro.core.interfaces import ClientPlatform, ServerPlatform
from repro.core.request import PB_PRIORITY, Reply, Request
from repro.core.server import SHARED_PRIORITY_POLICY
from repro.idl.compiler import IdlRemoteException
from repro.util.errors import CommunicationError, InvocationError, ServerFailedError

#: Attribute key where invokeServant stages a servant-raised exception so
#: invokeReturn handlers still run before the request fails.
ATTR_SERVANT_EXCEPTION = "servant_exception"


def replica_ids(platform: ClientPlatform) -> tuple[int, ...]:
    """The platform's logical replica ids, in preference order.

    Sharded directory views produce legitimately sparse id spaces, so QoS
    protocols iterate this instead of assuming ``range(1, N+1)``; platforms
    without the richer surface keep the historical contiguous ids.
    """
    server_ids = getattr(platform, "server_ids", None)
    if server_ids is not None:
        return server_ids()
    return tuple(range(1, platform.num_servers() + 1))


def server_replica_ids(platform: ServerPlatform) -> tuple[int, ...]:
    """The server-side replica group's logical ids (client counterpart above).

    Replication protocols multicast to this instead of assuming a dense
    ``range(1, num_replicas()+1)`` — under sharding the group is sparse.
    """
    ids = getattr(platform, "replica_ids", None)
    if ids is not None:
        return ids()
    return tuple(range(1, platform.num_replicas() + 1))


@register_micro_protocol("ClientBase")
class ClientBase(MicroProtocol):
    """The default client-side pipeline (see module docstring)."""

    name = "ClientBase"

    def start(self) -> None:
        self.bind(EV_NEW_REQUEST, self.assigner, order=ORDER_LAST)
        self.bind(EV_READY_TO_SEND, self.sync_invoker, order=ORDER_LAST)
        self.bind(EV_INVOKE_SUCCESS, self.result_returner, order=ORDER_LAST)
        self.bind(EV_INVOKE_FAILURE, self.result_returner, order=ORDER_LAST)

    # -- handlers -----------------------------------------------------------

    def assigner(self, occurrence: Occurrence) -> None:
        """Assign the first non-failed server (server 1 in the simple case).

        "Failed" is the union of this client's own observations (the shared
        failed set) and the platform directory's knowledge — which, on a
        sharded deployment, includes the failed members the adopted
        directory view carries, so a membership change steers even plain
        base clients away from a dead replica before the first timeout.
        """
        request: Request = occurrence.args[0]
        platform: ClientPlatform = self.shared.get(SHARED_PLATFORM)
        failed: set = self.shared.get(SHARED_FAILED_SERVERS) or set()
        candidates = replica_ids(platform)
        server = candidates[0] if candidates else 1
        for candidate in candidates:
            if candidate not in failed and platform.server_status(candidate):
                server = candidate
                break
        request.server = server
        self.raise_event(EV_READY_TO_SEND, request, server)

    def sync_invoker(self, occurrence: Occurrence) -> None:
        """Invoke the assigned server; raise invokeSuccess/invokeFailure."""
        request: Request = occurrence.args[0]
        server: int = occurrence.args[1]
        platform: ClientPlatform = self.shared.get(SHARED_PLATFORM)
        try:
            if not platform.server_status(server):
                raise ServerFailedError(f"server {server} is not running")
            platform.bind(server)
            value = platform.invoke_server(server, request)
        except CommunicationError as exc:
            reply = Reply(server=server, exception=exc, failed=True)
            request.add_reply(reply)
            self.raise_event(EV_INVOKE_FAILURE, request, server, reply)
            return
        except (IdlRemoteException, InvocationError) as exc:
            # The invocation reached the servant and raised: an application-
            # level outcome, not a failure (PassiveRep must not fail over).
            reply = Reply(server=server, exception=exc)
            request.add_reply(reply)
            self.raise_event(EV_INVOKE_SUCCESS, request, server, reply)
            return
        reply = Reply(server=server, value=value)
        request.add_reply(reply)
        self.raise_event(EV_INVOKE_SUCCESS, request, server, reply)

    def result_returner(self, occurrence: Occurrence) -> None:
        """Default acceptance: the first reply completes the request."""
        request: Request = occurrence.args[0]
        reply: Reply = occurrence.args[2]
        request.complete_from_reply(reply)


@register_micro_protocol("ServerBase")
class ServerBase(MicroProtocol):
    """The default server-side pipeline (see module docstring)."""

    name = "ServerBase"

    def start(self) -> None:
        self.bind(EV_NEW_SERVER_REQUEST, self.get_parameters, order=ORDER_LAST)
        self.bind(EV_READY_TO_INVOKE, self.invoke_servant, order=ORDER_LAST)

    # -- handlers ------------------------------------------------------------

    def get_parameters(self, occurrence: Occurrence) -> None:
        """Extract Cactus parameters (priority) and raise readyToInvoke."""
        request: Request = occurrence.args[0]
        policy = self.shared.get(SHARED_PRIORITY_POLICY)
        if policy is not None:
            request.piggyback[PB_PRIORITY] = int(policy(request))
        self.raise_event(EV_READY_TO_INVOKE, request)

    def invoke_servant(self, occurrence: Occurrence) -> None:
        """Call the server object, raise invokeReturn, complete the request."""
        request: Request = occurrence.args[0]
        platform: ServerPlatform = self.shared.get(SHARED_PLATFORM)
        try:
            value = platform.invoke_servant(request)
        except BaseException as exc:  # noqa: BLE001 - staged for invokeReturn
            request.attributes[ATTR_SERVANT_EXCEPTION] = exc
        else:
            request.set_result(value)
        # invokeReturn handlers run before the reply goes out: they may
        # transform the staged result (encryption) or advance ordering state.
        self.raise_event(EV_INVOKE_RETURN, request)
        exception = request.attributes.get(ATTR_SERVANT_EXCEPTION)
        if exception is not None:
            request.fail(exception)
        else:
            request.complete(request.stored_result)
