"""QoS micro-protocols (paper section 3).

- :mod:`repro.qos.base` — ClientBase and ServerBase, the default
  request-processing pipeline every configuration builds on;
- :mod:`repro.qos.fault_tolerance` — ActiveRep, PassiveRep, acceptance
  semantics (first response / first success / majority vote), sequencer
  TotalOrder, plus the extensions the paper lists as easy to add
  (retransmission, coordinator failover, request logging & recovery);
- :mod:`repro.qos.security` — DesPrivacy, SignedIntegrity, AccessControl;
- :mod:`repro.qos.timeliness` — PrioritySched, QueuedSched, TimedSched;
- :mod:`repro.qos.combinations` — the composability matrix behind the
  paper's ">100 combinations" claim, with validation of client/server
  configuration pairs.

None of the individual techniques is novel (the paper says as much); what
is reproduced is their packaging as composable micro-protocols.
"""

from repro.qos.base import ClientBase, ServerBase
from repro.qos.fault_tolerance import (
    ActiveRep,
    CircuitBreaker,
    DeadlineBudget,
    DeadlineShed,
    Degrade,
    FirstSuccess,
    MajorityVote,
    PassiveRep,
    PassiveRepServer,
    Retransmit,
    RetryBackoff,
    Stale,
    TotalOrder,
)
from repro.qos.security import AccessControl, DesPrivacy, DesPrivacyServer, SignedIntegrity, SignedIntegrityServer
from repro.qos.timeliness import PrioritySched, QueuedSched, TimedSched
from repro.qos.combinations import (
    CLIENT_SIDE,
    FT_COMBINATIONS,
    SERVER_SIDE,
    all_combinations,
    count_combinations,
    validate_configuration,
)

__all__ = [
    "ClientBase",
    "ServerBase",
    "ActiveRep",
    "PassiveRep",
    "PassiveRepServer",
    "FirstSuccess",
    "MajorityVote",
    "TotalOrder",
    "Retransmit",
    "RetryBackoff",
    "CircuitBreaker",
    "DeadlineBudget",
    "DeadlineShed",
    "Degrade",
    "Stale",
    "DesPrivacy",
    "DesPrivacyServer",
    "SignedIntegrity",
    "SignedIntegrityServer",
    "AccessControl",
    "PrioritySched",
    "QueuedSched",
    "TimedSched",
    "all_combinations",
    "count_combinations",
    "validate_configuration",
    "FT_COMBINATIONS",
    "CLIENT_SIDE",
    "SERVER_SIDE",
]
