"""Server-side access control (§3.3: "access control is implemented by a
micro-protocol at the server").

Policy model: a per-operation allowlist keyed on the piggybacked client
identity, with a configurable default for operations without an explicit
entry.  Checked on ``readyToInvoke`` *after* the security preprocessing of
``newServerRequest`` (so the identity has been integrity-verified when
SignedIntegrityServer is configured) and *before* everything else on that
event — a denied request must never consume a sequence number, a scheduling
slot, or the servant.

Denial completes the request with
:class:`~repro.util.errors.AccessDeniedError` and halts the whole chain;
the client sees the error as the invocation outcome.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_FIRST, Occurrence
from repro.core.events import EV_READY_TO_INVOKE
from repro.core.request import Request
from repro.util.errors import AccessDeniedError


@register_micro_protocol("AccessControl")
class AccessControl(MicroProtocol):
    """Allowlist-based per-operation access control."""

    name = "AccessControl"

    def __init__(
        self,
        acl: Mapping[str, Iterable[str]] | None = None,
        default_allow: bool = True,
    ):
        """``acl`` maps operation name -> allowed client ids.

        Operations absent from ``acl`` follow ``default_allow``.
        """
        super().__init__()
        self._acl = {op: frozenset(clients) for op, clients in (acl or {}).items()}
        self._default_allow = default_allow

    def start(self) -> None:
        self.bind(EV_READY_TO_INVOKE, self.check_access, order=ORDER_FIRST)

    def allowed(self, operation: str, client_id: str) -> bool:
        entry = self._acl.get(operation)
        if entry is None:
            return self._default_allow
        return client_id in entry

    def check_access(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        if self.allowed(request.operation, request.client_id):
            return
        request.fail(
            AccessDeniedError(
                f"client {request.client_id!r} may not call {request.operation!r}"
            )
        )
        occurrence.halt_all()
