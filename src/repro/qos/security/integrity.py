"""Message integrity via a signature-based scheme (§3.3).

"Integrity is provided by a signature-based scheme implemented by
micro-protocols at the client and server."  With the prototype's symmetric
keys the signature is a keyed MAC (:mod:`repro.crypto.mac`).

What is signed:

- requests — the canonical serialization of
  ``[object_id, operation, params]``, computed over the *plaintext*
  parameters (the client signs before DesPrivacy encrypts; the server
  verifies after DesPrivacyServer decrypts — see the order constants in
  :mod:`repro.qos.security.privacy`); the signature piggybacks on the
  request;
- replies — the serialized reply value as sent (i.e. over the ciphertext
  wrapper when privacy is also configured), wrapped as
  ``{"__cqos_sig__": sig, "v": value}`` since platform replies carry no
  piggyback slot.  The client verifies before decrypting.

Verification failure raises :class:`~repro.util.errors.IntegrityError`: on
the server it rejects the request before the servant runs; on the client it
surfaces as the reply's outcome (a failed-integrity reply must never be
silently accepted, even by voting — the handler substitutes the error for
the value before acceptance protocols see it).
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import Occurrence
from repro.core.events import (
    EV_INVOKE_RETURN,
    EV_INVOKE_SUCCESS,
    EV_NEW_SERVER_REQUEST,
    EV_READY_TO_SEND,
)
from repro.core.request import PB_SIGNATURE, Reply, Request
from repro.crypto.mac import hmac_digest, hmac_verify
from repro.qos.base import ATTR_SERVANT_EXCEPTION
from repro.qos.security.privacy import (
    ORDER_CLIENT_SIGN,
    ORDER_REPLY_SIGN,
    ORDER_REPLY_VERIFY,
    ORDER_SERVER_VERIFY,
)
from repro.serialization.jser import jser_dumps
from repro.util.errors import ConfigurationError, IntegrityError

SIG_KEY = "__cqos_sig__"
ATTR_SIGNED = "integrity_signed"
ATTR_WANTS_SIGNED_REPLY = "integrity_reply"


def _resolve_key(key: bytes | None, key_hex: str | None) -> bytes:
    if key is not None and key_hex is not None:
        raise ConfigurationError("pass either key or key_hex, not both")
    if key_hex is not None:
        key = bytes.fromhex(key_hex)
    if key is None:
        raise ConfigurationError("SignedIntegrity requires a key (key= or key_hex=)")
    return key


def _request_digest(key: bytes, request: Request) -> bytes:
    blob = jser_dumps([request.object_id, request.operation, request.get_params()])
    return hmac_digest(key, blob)


@register_micro_protocol("SignedIntegrity")
class SignedIntegrity(MicroProtocol):
    """Client half: sign requests, verify reply signatures."""

    name = "SignedIntegrity"

    def __init__(self, key: bytes | None = None, key_hex: str | None = None):
        super().__init__()
        self._key = _resolve_key(key, key_hex)

    def start(self) -> None:
        self.bind(EV_READY_TO_SEND, self.sign_request, order=ORDER_CLIENT_SIGN)
        self.bind(EV_INVOKE_SUCCESS, self.verify_reply, order=ORDER_REPLY_VERIFY)

    def sign_request(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        with request.mutex:
            if request.attributes.get(ATTR_SIGNED):
                return
            request.piggyback[PB_SIGNATURE] = _request_digest(self._key, request)
            request.attributes[ATTR_SIGNED] = True

    def verify_reply(self, occurrence: Occurrence) -> None:
        reply: Reply = occurrence.args[2]
        if not (isinstance(reply.value, dict) and SIG_KEY in reply.value):
            return
        signature = reply.value[SIG_KEY]
        value = reply.value.get("v")
        if hmac_verify(self._key, jser_dumps(value), signature):
            reply.value = value
        else:
            reply.value = None
            reply.exception = IntegrityError(
                f"reply signature verification failed (server {reply.server})"
            )


@register_micro_protocol("SignedIntegrityServer")
class SignedIntegrityServer(MicroProtocol):
    """Server half: verify request signatures, sign replies."""

    name = "SignedIntegrityServer"

    def __init__(self, key: bytes | None = None, key_hex: str | None = None):
        super().__init__()
        self._key = _resolve_key(key, key_hex)

    def start(self) -> None:
        self.bind(EV_NEW_SERVER_REQUEST, self.verify_request, order=ORDER_SERVER_VERIFY)
        self.bind(EV_INVOKE_RETURN, self.sign_reply, order=ORDER_REPLY_SIGN)

    def verify_request(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        signature = request.piggyback.get(PB_SIGNATURE)
        if not isinstance(signature, (bytes, bytearray)) or not hmac_verify(
            self._key,
            jser_dumps([request.object_id, request.operation, request.get_params()]),
            bytes(signature),
        ):
            request.fail(
                IntegrityError(
                    f"request signature {'missing' if signature is None else 'invalid'} "
                    f"for {request.operation}"
                )
            )
            occurrence.halt_all()
            return
        request.attributes[ATTR_WANTS_SIGNED_REPLY] = True

    def sign_reply(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        if not request.attributes.get(ATTR_WANTS_SIGNED_REPLY):
            return
        if request.attributes.get(ATTR_SERVANT_EXCEPTION) is not None:
            return
        value = request.stored_result
        request.set_result(
            {SIG_KEY: hmac_digest(self._key, jser_dumps(value)), "v": value}
        )
