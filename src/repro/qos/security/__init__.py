"""Security micro-protocols (paper section 3.3).

- :class:`~repro.qos.security.privacy.DesPrivacy` /
  :class:`~repro.qos.security.privacy.DesPrivacyServer` — message
  confidentiality: DES encryption of the request parameters and the reply
  value (the paper notes this is slightly less than CORBA Security Level 1,
  which encrypts the whole message — same here: operation names and
  piggyback travel in the clear);
- :class:`~repro.qos.security.integrity.SignedIntegrity` /
  :class:`~repro.qos.security.integrity.SignedIntegrityServer` — message
  integrity via a signature-based (keyed-MAC) scheme over parameters and
  replies;
- :class:`~repro.qos.security.access.AccessControl` — server-side
  per-operation access control keyed on the piggybacked client identity.

Layering ("the decryption handler is executed transparently prior to all
other handlers"): on the request path the client signs the plaintext
parameters, then encrypts; the server decrypts first, then verifies.  On
the reply path the server encrypts, then signs (so the client verifies
before decrypting).  Handler orders encode this and are stable whichever
subset of the three protocols is configured.
"""

from repro.qos.security.privacy import DesPrivacy, DesPrivacyServer
from repro.qos.security.integrity import SignedIntegrity, SignedIntegrityServer
from repro.qos.security.access import AccessControl

__all__ = [
    "DesPrivacy",
    "DesPrivacyServer",
    "SignedIntegrity",
    "SignedIntegrityServer",
    "AccessControl",
]
