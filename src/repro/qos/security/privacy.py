"""DES confidentiality for request parameters and reply values (§3.3).

"DesPrivacy encrypts and decrypts the request parameters and reply using
DES.  The client side uses a handler bound to readyToSend to encrypt the
request parameters and a handler bound to invokeSuccess to decrypt the
reply value.  …  The server side decryption of request parameters is
implemented by a handler that [runs] prior to all other [newServerRequest]
processing.  The server side encryption of the reply value is implemented
by a handler bound to invokeReturn."

Wire shape: the parameter vector is serialized (jser), DES-CBC encrypted,
and replaced by a single-element vector holding the ciphertext; the
piggyback flag announces encryption.  Replies travel as a
``{"__cqos_ct__": ciphertext}`` wrapper.  Under ActiveRep the per-replica
``readyToSend`` raises run concurrently, so encryption is guarded by the
request mutex and happens exactly once (all replicas share one parameter
vector — and must, since DES-CBC uses a random IV per encryption and
MajorityVote compares reply values after decryption).

One deviation from the prototype's description is deliberate: the paper
says the server decrypt handler *overrides* getParameters; here it runs
*before* it without halting, so SignedIntegrityServer and AccessControl can
still observe the event.  The observable pipeline (decrypt before anything
else, then parameter extraction) is identical.
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import Occurrence
from repro.core.events import (
    EV_INVOKE_RETURN,
    EV_INVOKE_SUCCESS,
    EV_NEW_SERVER_REQUEST,
    EV_READY_TO_SEND,
)
from repro.core.request import PB_ENCRYPTED, Reply, Request
from repro.crypto.des import DesCipher
from repro.qos.base import ATTR_SERVANT_EXCEPTION
from repro.serialization.jser import jser_dumps, jser_loads
from repro.util.errors import ConfigurationError

# Handler orders within the security layer (see package docstring).
ORDER_CLIENT_SIGN = 3
ORDER_CLIENT_ENCRYPT = 6
ORDER_SERVER_DECRYPT = 0
ORDER_SERVER_VERIFY = 5
ORDER_REPLY_VERIFY = 0
ORDER_REPLY_DECRYPT = 2
ORDER_REPLY_ENCRYPT = 50
ORDER_REPLY_SIGN = 55

CT_KEY = "__cqos_ct__"

ATTR_WAS_ENCRYPTED = "privacy_was_encrypted"


def _resolve_key(key: bytes | None, key_hex: str | None) -> bytes:
    if key is not None and key_hex is not None:
        raise ConfigurationError("pass either key or key_hex, not both")
    if key_hex is not None:
        key = bytes.fromhex(key_hex)
    if key is None:
        raise ConfigurationError("DesPrivacy requires a key (key= or key_hex=)")
    return key


@register_micro_protocol("DesPrivacy")
class DesPrivacy(MicroProtocol):
    """Client half: encrypt outgoing parameters, decrypt reply values."""

    name = "DesPrivacy"

    def __init__(self, key: bytes | None = None, key_hex: str | None = None):
        super().__init__()
        self._cipher = DesCipher(_resolve_key(key, key_hex))

    def start(self) -> None:
        self.bind(EV_READY_TO_SEND, self.encrypt_params, order=ORDER_CLIENT_ENCRYPT)
        self.bind(EV_INVOKE_SUCCESS, self.decrypt_reply, order=ORDER_REPLY_DECRYPT)

    def encrypt_params(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        with request.mutex:
            if request.piggyback.get(PB_ENCRYPTED):
                return  # another replica's send already encrypted
            ciphertext = self._cipher.encrypt(jser_dumps(request.get_params()))
            request.set_params([ciphertext])
            request.piggyback[PB_ENCRYPTED] = True

    def decrypt_reply(self, occurrence: Occurrence) -> None:
        reply: Reply = occurrence.args[2]
        if isinstance(reply.value, dict) and CT_KEY in reply.value:
            reply.value = jser_loads(self._cipher.decrypt(reply.value[CT_KEY]))


@register_micro_protocol("DesPrivacyServer")
class DesPrivacyServer(MicroProtocol):
    """Server half: decrypt incoming parameters, encrypt reply values."""

    name = "DesPrivacyServer"

    def __init__(self, key: bytes | None = None, key_hex: str | None = None):
        super().__init__()
        self._cipher = DesCipher(_resolve_key(key, key_hex))

    def start(self) -> None:
        self.bind(EV_NEW_SERVER_REQUEST, self.decrypt_params, order=ORDER_SERVER_DECRYPT)
        self.bind(EV_INVOKE_RETURN, self.encrypt_reply, order=ORDER_REPLY_ENCRYPT)

    def decrypt_params(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        if not request.piggyback.get(PB_ENCRYPTED):
            return
        ciphertext = request.get_param(0)
        request.set_params(jser_loads(self._cipher.decrypt(ciphertext)))
        # Clear the flag so replica forwarding ships plaintext exactly once;
        # remember locally that this client expects an encrypted reply.
        request.piggyback[PB_ENCRYPTED] = False
        request.attributes[ATTR_WAS_ENCRYPTED] = True

    def encrypt_reply(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        if not request.attributes.get(ATTR_WAS_ENCRYPTED):
            return
        if request.attributes.get(ATTR_SERVANT_EXCEPTION) is not None:
            return  # exceptions travel unencrypted, like the prototype
        ciphertext = self._cipher.encrypt(jser_dumps(request.stored_result))
        request.set_result({CT_KEY: ciphertext})
