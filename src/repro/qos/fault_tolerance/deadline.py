"""Deadline propagation and expired-work shedding (extension).

The timeliness micro-protocols (§3.4) bound *waiting*; these two bound
*work*.  :class:`DeadlineBudget` runs client-side and attaches an absolute
deadline to every request (piggybacked under
:data:`~repro.core.request.PB_DEADLINE`, so it crosses all three platform
adapters as invocation context).  :class:`DeadlineShed` runs server-side
and refuses to start requests whose deadline has already passed — the
client stopped waiting, so invoking the servant would be pure wasted work
("work shedding" in overload-control terms).

A shed surfaces on the client as
:class:`~repro.util.errors.DeadlineExceededError` (rehydrated to its real
class by the platform adapters), which is deliberately *not* retryable:
retrying an already-late request makes the overload worse.  Pair with
:class:`~repro.qos.fault_tolerance.degrade.Degrade` to serve a stale cached
value instead of an error.

Deadlines are absolute values on the shared monotonic clock; see the
:data:`~repro.core.request.PB_DEADLINE` note for the single-process
assumption.
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_FIRST, Occurrence
from repro.core.events import (
    EV_INVOKE_FAILURE,
    EV_INVOKE_SUCCESS,
    EV_NEW_REQUEST,
    EV_NEW_SERVER_REQUEST,
    EV_READY_TO_SEND,
)
from repro.core.request import Reply, Request
from repro.util.errors import DeadlineExceededError
from repro.util.log import get_logger

logger = get_logger("qos.deadline")


@register_micro_protocol("DeadlineBudget")
class DeadlineBudget(MicroProtocol):
    """Client side: attach a time budget; shed sends that can't make it.

    On ``newRequest`` the request gets ``deadline = now + budget`` (unless
    the caller piggybacked one already — explicit deadlines win).  On every
    ``readyToSend`` — including retries raised by the retry micro-protocols —
    an already-expired request is failed locally instead of being sent, so a
    slow first attempt does not cascade into doomed retries.

    On ``invokeSuccess`` a reply that arrives *after* the deadline is
    rejected instead of served: the caller's contract is "an answer within
    the budget or an error", and a late answer silently served would make
    every downstream deadline guarantee unverifiable.  This closes the
    last hole in the overload stack's "zero responses past PB_DEADLINE"
    invariant (admission and DeadlineShed only cover the server side).
    """

    name = "DeadlineBudget"

    def __init__(self, budget: float):
        """``budget`` is the per-request time allowance in seconds."""
        super().__init__()
        if budget <= 0:
            raise ValueError("budget must be positive")
        self._budget = budget

    def start(self) -> None:
        self.bind(EV_NEW_REQUEST, self.attach_deadline, order=ORDER_FIRST)
        self.bind(EV_READY_TO_SEND, self.shed_expired, order=ORDER_FIRST)
        self.bind(EV_INVOKE_SUCCESS, self.reject_late, order=ORDER_FIRST)

    def attach_deadline(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        if request.deadline is None:
            request.deadline = self.composite.runtime.clock.now() + self._budget
            self.incr("attached")

    def shed_expired(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        server: int = occurrence.args[1]
        now = self.composite.runtime.clock.now()
        if not request.deadline_expired(now):
            return
        self.incr("client_sheds")
        logger.debug(
            "shedding %s to server %d client-side: deadline passed",
            request.operation, server,
        )
        reply = Reply(
            server=server,
            exception=DeadlineExceededError(
                f"deadline passed before send of {request.operation}"
            ),
            failed=True,
        )
        request.add_reply(reply)
        occurrence.halt()
        self.raise_event(EV_INVOKE_FAILURE, request, server, reply)

    def reject_late(self, occurrence: Occurrence) -> None:
        """A success past the deadline is a failure, not a slow success."""
        request: Request = occurrence.args[0]
        now = self.composite.runtime.clock.now()
        if not request.deadline_expired(now):
            return
        self.incr("late_replies")
        logger.debug(
            "rejecting late reply of %s: arrived past deadline", request.operation
        )
        occurrence.halt_all()
        request.fail(
            DeadlineExceededError(
                f"reply to {request.operation} arrived after its deadline"
            )
        )


@register_micro_protocol("DeadlineShed")
class DeadlineShed(MicroProtocol):
    """Server side: refuse to start requests whose deadline already passed.

    Binds first on ``newServerRequest`` and halts *everything* (including
    the base getParameters) for expired requests, failing them with
    :class:`~repro.util.errors.DeadlineExceededError` — the reply still goes
    back (marshalled as a system exception) so the client learns promptly,
    but the servant is never invoked.

    ``grace`` loosens the cut-off: a request is shed only when it is more
    than ``grace`` seconds past its deadline (covers clock-read skew between
    composites; 0 by default since one process shares one clock).
    """

    name = "DeadlineShed"

    def __init__(self, grace: float = 0.0):
        super().__init__()
        if grace < 0:
            raise ValueError("grace must be >= 0")
        self._grace = grace

    def start(self) -> None:
        self.bind(EV_NEW_SERVER_REQUEST, self.shed_expired, order=ORDER_FIRST)

    def shed_expired(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        now = self.composite.runtime.clock.now()
        if not request.deadline_expired(now - self._grace):
            return
        self.incr("sheds")
        logger.debug("shedding %s server-side: deadline passed", request.operation)
        occurrence.halt_all()
        request.fail(
            DeadlineExceededError(
                f"deadline passed before {request.operation} started; shed"
            )
        )
