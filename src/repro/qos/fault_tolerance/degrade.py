"""Graceful degradation: serve last-known-good results on total failure.

The paper's availability properties (§3.2) mask failures with redundancy;
this extension handles the case where redundancy has run out — every
replica failed, the circuit is open, or the deadline is spent — by
completing the request with the *last known good* value for the same
operation and parameters, explicitly marked stale, instead of surfacing an
error.  Read-mostly clients keep limping along through an outage ("static"
content keeps rendering while the backend is down).

The protocol records good replies on ``invokeSuccess`` and acts on
``invokeFailure`` at :data:`~repro.cactus.events.ORDER_LATE`, i.e. only on
failures no earlier protocol absorbed: retries (ORDER_FIRST) and failover
(ORDER_EARLY) have already halted the occurrences they handled, so a
failure reaching LATE is about to fail the request.

Composition rules:

- install Degrade *before* an acceptance micro-protocol (FirstSuccess /
  MajorityVote) so its handler runs first within ORDER_LATE, and set
  ``expected_replies`` to the replica count so stale values are only served
  once every replica has failed;
- in the default non-replicated pipeline the defaults are right: one failed
  reply is terminal.

A stale completion sets ``request.attributes[ATTR_STALE]`` and bumps the
``stale_serves`` counter; with ``wrap=True`` the caller instead receives a
:class:`Stale` wrapper so staleness is visible in the return value itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_LATE, Occurrence
from repro.core.events import EV_INVOKE_FAILURE, EV_INVOKE_SUCCESS
from repro.core.request import Reply, Request
from repro.qos.extensions.caching import ClientCache
from repro.util.log import get_logger

logger = get_logger("qos.degrade")

#: request.attributes key set to True when the result served is stale.
ATTR_STALE = "degrade_stale"


@dataclass(frozen=True)
class Stale:
    """A last-known-good value served during an outage (``wrap=True``)."""

    value: Any
    stale: bool = True


@register_micro_protocol("Degrade")
class Degrade(MicroProtocol):
    """Complete terminally-failed requests with the last known good value."""

    name = "Degrade"

    def __init__(
        self,
        operations: tuple[str, ...] | list[str] = (),
        expected_replies: int | None = None,
        cache: ClientCache | None = None,
        wrap: bool = False,
    ):
        """``operations``: names eligible for stale serves (empty = all;
        restrict to idempotent reads — serving a stale value for a *write*
        would silently claim the write happened).

        ``expected_replies``: how many failed replies make a failure
        terminal (default 1, right for the non-replicated pipeline; set to
        the replica count under ActiveRep).

        ``cache``: an optional :class:`ClientCache` consulted as a fallback
        source of last-known-good values (its entries are used even when
        expired — stale is the point).

        ``wrap``: return :class:`Stale` wrappers instead of bare values.
        """
        super().__init__()
        self._operations = frozenset(operations)
        self._expected = 1 if expected_replies is None else expected_replies
        if self._expected < 1:
            raise ValueError("expected_replies must be >= 1")
        self._cache = cache
        self._wrap = wrap
        # (operation, params-repr) -> last good value; guarded by shared.lock.
        self._known_good: dict[tuple, Any] = {}

    def start(self) -> None:
        self.bind(EV_INVOKE_SUCCESS, self.record_good, order=ORDER_LATE)
        self.bind(EV_INVOKE_FAILURE, self.serve_stale, order=ORDER_LATE)

    # -- handlers -----------------------------------------------------------

    def record_good(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        reply: Reply = occurrence.args[2]
        if reply.exception is not None or not self._eligible(request):
            return
        with self.shared.lock:
            self._known_good[self._key(request)] = reply.value

    def serve_stale(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        if request.completed or not self._eligible(request):
            return
        if not self._terminal(request):
            return  # replication may still produce a real answer
        hit, value = self._lookup(request)
        if not hit:
            self.incr("misses")
            return
        self.incr("stale_serves")
        logger.debug("serving stale value for %s", request.operation)
        request.attributes[ATTR_STALE] = True
        request.complete(Stale(value) if self._wrap else value)
        occurrence.halt()  # the base returner must not fail the request

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _key(request: Request) -> tuple:
        return (request.operation, repr(request.get_params()))

    def _eligible(self, request: Request) -> bool:
        return not self._operations or request.operation in self._operations

    def _terminal(self, request: Request) -> bool:
        replies = request.replies()
        if len(replies) < self._expected:
            return False
        return all(reply.failed for reply in replies.values())

    def _lookup(self, request: Request) -> tuple[bool, Any]:
        with self.shared.lock:
            key = self._key(request)
            if key in self._known_good:
                return True, self._known_good[key]
        if self._cache is not None:
            return self._cache.peek(request)
        return False, None
