"""Active replication (paper section 3.2).

"ActiveRep consists of one handler actAssigner that is similar to the base
assigner except that it raises readyToSend asynchronously.  The constructor
of ActiveRep binds actAssigner to the event newRequest multiple times, once
for each server.  …  each instance of actAssigner raises readyToSend, which
starts a separate instance of syncInvoker … executed concurrently by a
separate thread and thus, the blocking server invocations are executed in
parallel.  The actAssigner handlers override the base assigner by executing
before it and halting further execution associated with the event."

Every sentence above maps one-to-one onto this implementation: the replica
number travels as the binding's *static argument*, the raise uses
``mode="async"`` so each ``syncInvoker`` instance runs on its own pool
thread, and ``halt()`` suppresses the later-ordered base assigner while
letting the same-ordered sibling instances run.
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_EARLY, Occurrence
from repro.core.client import SHARED_PLATFORM
from repro.core.events import EV_NEW_REQUEST, EV_READY_TO_SEND
from repro.core.interfaces import ClientPlatform
from repro.core.request import Request


@register_micro_protocol("ActiveRep")
class ActiveRep(MicroProtocol):
    """Send every request to all replicas concurrently."""

    name = "ActiveRep"

    def __init__(self, num_servers: int | None = None):
        """``num_servers`` overrides replica discovery (mainly for tests)."""
        super().__init__()
        self._num_servers = num_servers

    def start(self) -> None:
        platform: ClientPlatform = self.shared.get(SHARED_PLATFORM)
        if self._num_servers is not None:
            replicas = tuple(range(1, self._num_servers + 1))
        else:
            from repro.qos.base import replica_ids

            replicas = replica_ids(platform)
        for server in replicas:
            self.bind(
                EV_NEW_REQUEST,
                self.act_assigner,
                order=ORDER_EARLY,
                static_args=(server,),
            )

    def act_assigner(self, occurrence: Occurrence, server: int) -> None:
        """One instance per replica: dispatch asynchronously, override base."""
        request: Request = occurrence.args[0]
        self.raise_event(EV_READY_TO_SEND, request, server, mode="async")
        occurrence.halt()
