"""Active replication (paper section 3.2).

"ActiveRep consists of one handler actAssigner that is similar to the base
assigner except that it raises readyToSend asynchronously.  The constructor
of ActiveRep binds actAssigner to the event newRequest multiple times, once
for each server.  …  each instance of actAssigner raises readyToSend, which
starts a separate instance of syncInvoker … executed concurrently by a
separate thread and thus, the blocking server invocations are executed in
parallel.  The actAssigner handlers override the base assigner by executing
before it and halting further execution associated with the event."

The *observable* semantics above are preserved exactly — one
``readyToSend`` per replica, the base ``syncInvoker`` overridden, one
``invokeSuccess``/``invokeFailure`` per replica outcome with the base
taxonomy, the base ``resultReturner`` completing from the first reply — but
the mechanics are a scatter-gather pipeline instead of a thread per
replica: :meth:`act_assigner` raises ``readyToSend`` for every replica in
one pass, :meth:`submit_invoker` turns each into one *non-blocking*
``invoke_server_async`` submission (the async engine coalesces the
back-to-back submissions into a single syscall), and one runtime task
gathers the replies in completion order, raising the invoke events.

Gather policies (``CQOS_GATHER_POLICY``, beyond the paper):

- ``all`` (default) — every branch is gathered and raises its event; the
  first reply still completes the request (historical semantics, event for
  event);
- ``first`` — the first *successful* reply completes the request and the
  remaining branches are abandoned (correlation ids reclaimed);
- ``quorum:k`` — the request completes when ``k`` replies *match* (equal
  values / equal application errors); stragglers are abandoned.  If the
  scatter drains without a quorum the request fails.

Abandoning never cancels remote execution — active replication sends to
every replica regardless; only the local wait is cut short.
"""

from __future__ import annotations

import os

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_EARLY, Occurrence
from repro.core.client import SHARED_PLATFORM
from repro.core.events import (
    EV_INVOKE_FAILURE,
    EV_INVOKE_SUCCESS,
    EV_NEW_REQUEST,
    EV_READY_TO_SEND,
)
from repro.core.interfaces import ClientPlatform
from repro.core.platform import (
    GATHER_ALL,
    GATHER_FIRST,
    GATHER_POLICY_ENV,
    GATHER_QUORUM,
    BranchOutcome,
    ScatterGather,
    parse_gather_policy,
    threaded_reply_future,
)
from repro.core.request import Reply, Request
from repro.idl.compiler import IdlRemoteException
from repro.serialization.jser import jser_dumps
from repro.util.errors import CommunicationError, InvocationError, ServerFailedError

#: submit_invoker's order on readyToSend: after every QoS protocol that
#: manipulates the outgoing request (encryption, deadline stamping — they
#: run at ORDER_DEFAULT/ORDER_LATE), just before the base syncInvoker (100),
#: which it overrides for scatter passes.
ORDER_SUBMIT = 99

#: Request attribute present only *during* the scatter pass: gates
#: submit_invoker so a readyToSend re-raised later (retry protocols) falls
#: through to the base syncInvoker unchanged.
ATTR_SCATTER = "active_scatter"
#: Request attribute holding the gather context for the request's lifetime
#: (the acceptance gate consults it on every invoke event).
ATTR_GATHER = "active_gather"


def _match_key(reply: Reply) -> str:
    """The quorum-matching identity of one successful reply."""
    if reply.exception is not None:
        return f"exc:{type(reply.exception).__name__}:{reply.exception}"
    try:
        return "val:" + jser_dumps(reply.value).hex()
    except Exception:  # noqa: BLE001 - unmarshallable values match by repr
        return f"rep:{reply.value!r}"


class _GatherContext:
    """Per-request scatter state shared by the gather task and the gate."""

    def __init__(self, mode: str, quorum_k: int):
        self.scatter = ScatterGather()
        self.mode = mode
        self.quorum_k = quorum_k
        self.satisfied = False
        self.gathered = 0
        self.successes = 0
        self.last_failure: BaseException | None = None
        self._votes: dict[str, int] = {}

    def accept(self, reply: Reply) -> bool:
        """Record one gathered reply; True when it satisfies the policy."""
        self.gathered += 1
        if reply.failed:
            self.last_failure = reply.exception
            return False
        self.successes += 1
        if self.mode == GATHER_FIRST:
            self.satisfied = True
            return True
        if self.mode == GATHER_QUORUM:
            key = _match_key(reply)
            votes = self._votes.get(key, 0) + 1
            self._votes[key] = votes
            if votes >= self.quorum_k:
                self.satisfied = True
                return True
        return False

    def exhausted(self) -> bool:
        return self.gathered >= self.scatter.submitted

    def exhaustion_error(self) -> BaseException:
        """The failure completing a request whose scatter drained unsatisfied."""
        if self.mode == GATHER_QUORUM and self.successes > 0:
            return CommunicationError(
                f"no {self.quorum_k}-of-{self.scatter.submitted} quorum: "
                f"{self.successes} replies, largest match "
                f"{max(self._votes.values(), default=0)}"
            )
        return self.last_failure or CommunicationError(
            "active replication: no replica produced a reply"
        )


@register_micro_protocol("ActiveRep")
class ActiveRep(MicroProtocol):
    """Send every request to all replicas through one pipelined fan-out."""

    name = "ActiveRep"

    def __init__(self, num_servers: int | None = None, gather_policy: str | None = None):
        """``num_servers`` caps the replica group (mainly for tests);
        ``gather_policy`` overrides the ``CQOS_GATHER_POLICY`` environment
        knob (``"all"`` / ``"first"`` / ``"quorum:k"``)."""
        super().__init__()
        self._num_servers = num_servers
        self._policy_spec = gather_policy
        self._mode = GATHER_ALL
        self._quorum_k = 0

    def start(self) -> None:
        spec = self._policy_spec
        if spec is None:
            spec = os.environ.get(GATHER_POLICY_ENV)
        self._mode, self._quorum_k = parse_gather_policy(spec)
        self.bind(EV_NEW_REQUEST, self.act_assigner, order=ORDER_EARLY)
        self.bind(EV_READY_TO_SEND, self.submit_invoker, order=ORDER_SUBMIT)
        if self._mode != GATHER_ALL:
            # The acceptance gate runs just before the base resultReturner
            # and halts it until the policy is satisfied.
            self.bind(EV_INVOKE_SUCCESS, self.accept_gate, order=ORDER_SUBMIT)
            self.bind(EV_INVOKE_FAILURE, self.accept_gate, order=ORDER_SUBMIT)

    # -- replica group -------------------------------------------------------

    def _replicas(self, platform: ClientPlatform) -> tuple[int, ...]:
        """The fan-out group: sparse-id aware, optionally capped.

        ``num_servers`` takes the first n discovered ids (so a sparse
        sharded group keeps its real ids); if discovery comes up shorter
        than the explicit override, the historical dense enumeration wins.
        """
        from repro.qos.base import replica_ids

        ids = replica_ids(platform)
        if self._num_servers is not None:
            if len(ids) >= self._num_servers:
                ids = tuple(ids[: self._num_servers])
            else:
                ids = tuple(range(1, self._num_servers + 1))
        rank = getattr(platform, "rank_servers", None)
        if rank is not None:
            # Latency-EWMA order: known-fast replicas are submitted (and
            # typically answer) first, so first/quorum gathers finish
            # without waiting on the habitual straggler.
            ids = rank(ids)
        return tuple(ids)

    # -- handlers ------------------------------------------------------------

    def act_assigner(self, occurrence: Occurrence) -> None:
        """Scatter: one readyToSend per replica, then a single gather task."""
        request: Request = occurrence.args[0]
        platform: ClientPlatform = self.shared.get(SHARED_PLATFORM)
        ctx = _GatherContext(self._mode, self._quorum_k)
        request.attributes[ATTR_GATHER] = ctx
        request.attributes[ATTR_SCATTER] = ctx
        try:
            for server in self._replicas(platform):
                self.raise_event(EV_READY_TO_SEND, request, server)
        finally:
            request.attributes.pop(ATTR_SCATTER, None)
        self.composite.runtime.submit(self._gather, request, ctx)
        occurrence.halt()

    def submit_invoker(self, occurrence: Occurrence) -> None:
        """One non-blocking submission per replica; overrides syncInvoker.

        Mirrors the base syncInvoker's pre-flight (status check, bind) —
        a dead replica becomes an immediate failed branch, no wire traffic
        — and registers the in-flight exchange with the request's scatter.
        Outside a scatter pass (a retry protocol re-raising readyToSend)
        it falls through to the base syncInvoker untouched.
        """
        request: Request = occurrence.args[0]
        ctx: _GatherContext | None = request.attributes.get(ATTR_SCATTER)
        if ctx is None:
            return
        server: int = occurrence.args[1]
        platform: ClientPlatform = self.shared.get(SHARED_PLATFORM)
        ctx.scatter.submit(server, lambda: self._submit_one(platform, server, request))
        occurrence.halt()

    @staticmethod
    def _submit_one(platform: ClientPlatform, server: int, request: Request):
        if not platform.server_status(server):
            raise ServerFailedError(f"server {server} is not running")
        platform.bind(server)
        invoke_async = getattr(platform, "invoke_server_async", None)
        if invoke_async is not None:
            return invoke_async(server, request)
        # Platforms exposing only the blocking surface (test fakes) fan out
        # on daemon threads — the historical thread-per-replica shape.
        return threaded_reply_future(lambda: platform.invoke_server(server, request))

    def accept_gate(self, occurrence: Occurrence) -> None:
        """Policy acceptance (first/quorum): halt the base returner until met.

        The satisfying reply falls through, so the base resultReturner
        completes the request from it exactly as it always has; premature
        replies are recorded (votes, failure bookkeeping) and halted.
        """
        request: Request = occurrence.args[0]
        ctx: _GatherContext | None = request.attributes.get(ATTR_GATHER)
        if ctx is None or ctx.mode == GATHER_ALL:
            return
        reply: Reply = occurrence.args[2]
        if ctx.satisfied or ctx.accept(reply):
            return
        occurrence.halt()

    # -- gather task ----------------------------------------------------------

    def _gather(self, request: Request, ctx: _GatherContext) -> None:
        """Drain the scatter on one runtime task, raising the invoke events.

        Replies are processed in *completion* order — the pipelined
        equivalent of the old per-replica threads racing — and each raises
        the same event with the same reply taxonomy the base syncInvoker
        produced.  Once the policy is satisfied the remaining branches are
        abandoned (their correlation-id waiter entries are reclaimed; the
        stragglers' replies, if any, are discarded by the transport).
        """
        scatter = ctx.scatter
        while True:
            outcome = scatter.next_outcome()
            if outcome is None:
                break
            reply = self._reply_from_outcome(outcome)
            request.add_reply(reply)
            if reply.failed:
                self.raise_event(EV_INVOKE_FAILURE, request, reply.server, reply)
            else:
                self.raise_event(EV_INVOKE_SUCCESS, request, reply.server, reply)
            if ctx.satisfied:
                scatter.abandon_rest()
                break
        if ctx.mode != GATHER_ALL and not ctx.satisfied:
            request.fail(ctx.exhaustion_error())
        request.attributes.pop(ATTR_GATHER, None)

    @staticmethod
    def _reply_from_outcome(outcome: BranchOutcome) -> Reply:
        """Map one branch outcome onto the base syncInvoker's taxonomy."""
        server: int = outcome.key
        error = outcome.error
        if error is None:
            return Reply(server=server, value=outcome.value)
        if isinstance(error, (IdlRemoteException, InvocationError)):
            # Reached the servant and raised: an application outcome.
            return Reply(server=server, exception=error)
        return Reply(server=server, exception=error, failed=True)
