"""Passive replication (paper section 3.2).

Client side (:class:`PassiveRep`):

- **pasAssigner** overrides the base assigner and "assigns the first
  non-failed server to serve the request";
- **primarySelector** overrides the base resultReturner for
  ``invokeFailure``: it "marks the current primary as failed and raises
  newRequest to re-execute the request.  As a result, the client thread is
  not released until a proper result has been received or all replicas have
  failed."

Server side (:class:`PassiveRepServer`): the primary (whichever replica
receives a request directly from a client) forwards the request to the
other replicas concurrently after executing it, "to keep them consistent",
and every replica "keeps track of requests already received, so that
receiving a request again does not corrupt the server state" — a
request-id-keyed result cache consulted before the servant is invoked.
The cache also serves retried requests after a failover: if the old primary
managed to forward before crashing, the new primary answers the client's
retry from the cache instead of double-applying it.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_EARLY, ORDER_FIRST, ORDER_LATE, Occurrence
from repro.core.client import SHARED_FAILED_SERVERS, SHARED_PLATFORM
from repro.core.events import (
    CONTROL_EVENT_PREFIX,
    EV_INVOKE_FAILURE,
    EV_INVOKE_RETURN,
    EV_NEW_REQUEST,
    EV_NEW_SERVER_REQUEST,
    EV_READY_TO_INVOKE,
    EV_READY_TO_SEND,
)
from repro.core.interfaces import ClientPlatform, ControlMessage, ServerPlatform
from repro.core.platform import ScatterGather, threaded_reply_future
from repro.core.request import PB_FORWARDED, Request
from repro.core.server import SHARED_PLATFORM as SHARED_SERVER_PLATFORM
from repro.qos.base import ATTR_SERVANT_EXCEPTION, server_replica_ids
from repro.util.errors import CommunicationError, ServerFailedError
from repro.util.log import get_logger

logger = get_logger("qos.passive")

CONTROL_FORWARD = "forward"

#: Shared-data key for the server-side duplicate-suppression cache.
SHARED_SEEN = "passive_seen"


@register_micro_protocol("PassiveRep")
class PassiveRep(MicroProtocol):
    """Client half: primary selection and failover."""

    name = "PassiveRep"

    def start(self) -> None:
        self.bind(EV_NEW_REQUEST, self.pas_assigner, order=ORDER_EARLY)
        self.bind(EV_INVOKE_FAILURE, self.primary_selector, order=ORDER_EARLY)

    def _pick_primary(self) -> int | None:
        platform: ClientPlatform = self.shared.get(SHARED_PLATFORM)
        failed: set = self.shared.get(SHARED_FAILED_SERVERS)
        from repro.qos.base import replica_ids

        for server in replica_ids(platform):
            if server not in failed:
                return server
        return None

    def pas_assigner(self, occurrence: Occurrence) -> None:
        """Assign the first non-failed server; override the base assigner."""
        request: Request = occurrence.args[0]
        primary = self._pick_primary()
        if primary is None:
            request.fail(ServerFailedError("all replicas are marked failed"))
        else:
            request.server = primary
            self.raise_event(EV_READY_TO_SEND, request, primary)
        occurrence.halt()

    def primary_selector(self, occurrence: Occurrence) -> None:
        """Mark the primary failed and re-execute; override the returner."""
        request: Request = occurrence.args[0]
        server: int = occurrence.args[1]
        failed: set = self.shared.get(SHARED_FAILED_SERVERS)
        with self.shared.lock:
            failed.add(server)
        logger.warning(
            "primary replica %d failed for %s; failing over", server, request.operation
        )
        self.raise_event(EV_NEW_REQUEST, request)
        occurrence.halt()


@register_micro_protocol("PassiveRepServer")
class PassiveRepServer(MicroProtocol):
    """Server half: forwarding to backups and duplicate suppression."""

    name = "PassiveRepServer"

    def __init__(self, cache_size: int = 10000):
        super().__init__()
        self._cache_size = cache_size

    def start(self) -> None:
        self.shared.setdefault(SHARED_SEEN, OrderedDict())
        self.bind(EV_READY_TO_INVOKE, self.suppress_duplicate, order=ORDER_FIRST)
        self.bind(EV_INVOKE_RETURN, self.forward_to_backups, order=ORDER_EARLY)
        self.bind(EV_INVOKE_RETURN, self.record_outcome, order=ORDER_LATE)
        self.bind(CONTROL_EVENT_PREFIX + CONTROL_FORWARD, self.on_forward)

    # -- duplicate suppression -------------------------------------------

    def suppress_duplicate(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        seen: OrderedDict = self.shared.get(SHARED_SEEN)
        with self.shared.lock:
            cached = seen.get(request.request_id)
        if cached is None:
            return
        exception, value = cached
        if exception is not None:
            request.fail(exception)
        else:
            request.complete(value)
        occurrence.halt()

    def record_outcome(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        seen: OrderedDict = self.shared.get(SHARED_SEEN)
        outcome = (request.attributes.get(ATTR_SERVANT_EXCEPTION), request.stored_result)
        with self.shared.lock:
            seen[request.request_id] = outcome
            while len(seen) > self._cache_size:
                seen.popitem(last=False)

    # -- forwarding --------------------------------------------------------

    def forward_to_backups(self, occurrence: Occurrence) -> None:
        """Primary only: push the executed request to every backup.

        The forwards leave in one non-blocking scatter pass (pipelined on
        the wire) and are then gathered before the reply returns to the
        client, so a primary crash after the client saw the reply cannot
        lose the update.  A backup that is down is skipped — its branch
        outcome is a CommunicationError, repaired by recovery (see
        logging_recovery), not by the primary.  The group comes from
        :func:`~repro.qos.base.server_replica_ids` (sparse-id safe).
        """
        request: Request = occurrence.args[0]
        if request.piggyback.get(PB_FORWARDED):
            return  # we are a backup executing a forwarded request
        platform: ServerPlatform = self.shared.get(SHARED_SERVER_PLATFORM)
        me = platform.my_replica()
        wire = request.to_wire()
        wire["piggyback"][PB_FORWARDED] = True
        scatter = ScatterGather()
        for replica in server_replica_ids(platform):
            if replica == me:
                continue
            scatter.submit(
                replica,
                lambda replica=replica: self._forward_one(platform, replica, wire),
            )
        for outcome in scatter.gather_all(timeout=30.0):
            if outcome.error is not None and not isinstance(
                outcome.error, CommunicationError
            ):
                raise outcome.error

    @staticmethod
    def _forward_one(platform: ServerPlatform, replica: int, wire: dict):
        invoke_async = getattr(platform, "peer_invoke_async", None)
        if invoke_async is not None:
            return invoke_async(replica, CONTROL_FORWARD, wire)
        return threaded_reply_future(
            lambda: platform.peer_invoke(replica, CONTROL_FORWARD, wire)
        )

    def on_forward(self, occurrence: Occurrence) -> None:
        """Backup side: execute the forwarded request through the pipeline."""
        message: ControlMessage = occurrence.args[0]
        request = Request.from_wire(message.payload)
        self.raise_event(EV_NEW_SERVER_REQUEST, request)
        try:
            request.wait(timeout=30.0)
        except Exception:  # noqa: BLE001 - the outcome mirrors the primary's
            pass
        message.respond(True)
