"""Request logging and server recovery (extension).

The paper lists "request logging, server recovery" among the additional
fault-tolerance micro-protocols its architecture accommodates (§3.5).

:class:`RequestLog` appends every state-changing request (its wire form) to
a durable-ish store after the servant executed it; :func:`replay_log`
rebuilds a recovering replica's state by pushing the logged requests back
through a fresh Cactus server pipeline — which also re-populates the
duplicate-suppression cache, so post-recovery forwarded retries are
answered consistently.

The log store is pluggable: anything with ``append(entry)`` and iteration
(a list, or :class:`FileLogStore` for an actual file).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Protocol

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_LAST, Occurrence
from repro.core.events import EV_INVOKE_RETURN, EV_NEW_SERVER_REQUEST
from repro.core.request import PB_FORWARDED, Request
from repro.core.server import CactusServer
from repro.qos.base import ATTR_SERVANT_EXCEPTION


class LogStore(Protocol):
    def append(self, entry: dict) -> None: ...

    def __iter__(self): ...


class FileLogStore:
    """A JSON-lines file log (sufficient durability for the simulation)."""

    def __init__(self, path: str):
        self._path = path

    def append(self, entry: dict) -> None:
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, default=repr) + "\n")

    def __iter__(self):
        if not os.path.exists(self._path):
            return iter(())
        with open(self._path, encoding="utf-8") as handle:
            return iter([json.loads(line) for line in handle if line.strip()])


@register_micro_protocol("RequestLog")
class RequestLog(MicroProtocol):
    """Log every executed request for post-crash replay."""

    name = "RequestLog"

    def __init__(self, store: LogStore | None = None, log_reads: bool = False):
        super().__init__()
        self.store: LogStore = store if store is not None else []
        self._log_reads = log_reads

    def start(self) -> None:
        self.bind(EV_INVOKE_RETURN, self.log_request, order=ORDER_LAST)

    def log_request(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        if request.attributes.get(ATTR_SERVANT_EXCEPTION) is not None:
            return  # nothing was applied
        if not self._log_reads and not request.get_params():
            # Heuristic: parameterless operations are reads; applications
            # needing finer control pass log_reads=True and filter replay.
            return
        self.store.append(request.to_wire())


def replay_log(store: Iterable[dict], cactus_server: CactusServer) -> int:
    """Re-execute logged requests on a recovering replica; returns count.

    Entries are marked forwarded so replication protocols do not re-forward
    them, and travel the ordinary ``newServerRequest`` pipeline so duplicate
    suppression and ordering state rebuild alongside the servant state.
    """
    count = 0
    for wire in store:
        request = Request.from_wire(wire)
        request.piggyback[PB_FORWARDED] = True
        cactus_server.raise_event(EV_NEW_SERVER_REQUEST, request)
        request.wait(timeout=30.0)
        count += 1
    return count
