"""Fault-tolerance micro-protocols (paper section 3.2).

Replication:

- :class:`~repro.qos.fault_tolerance.active.ActiveRep` — active
  replication: the request goes to all replicas, all non-crashed replicas
  reply;
- :class:`~repro.qos.fault_tolerance.passive.PassiveRep` (client) and
  :class:`~repro.qos.fault_tolerance.passive.PassiveRepServer` (server) —
  passive replication: the designated primary replies and forwards state
  updates to the backups; the client fails over on primary failure.

Acceptance semantics (when is a request "completed"?):

- default (in ClientBase): first reply, success or failure;
- :class:`~repro.qos.fault_tolerance.acceptance.FirstSuccess` — first
  successful execution;
- :class:`~repro.qos.fault_tolerance.acceptance.MajorityVote` — majority
  value of the non-failed replicas.

Ordering: :class:`~repro.qos.fault_tolerance.total_order.TotalOrder` — a
sequencer-based total order across replicas (with the coordinator-failover
extension the paper leaves as future work).

Extensions beyond the prototype: :class:`~repro.qos.fault_tolerance.retransmit.Retransmit`
(transient network failures), request logging + recovery
(:mod:`~repro.qos.fault_tolerance.logging_recovery`), and a client-side
failure detector (:mod:`~repro.qos.fault_tolerance.membership`).

Resilience suite (extensions; see ``docs/RESILIENCE.md``):

- :class:`~repro.qos.fault_tolerance.resilience.RetryBackoff` — exponential
  backoff + decorrelated jitter + retry budget;
- :class:`~repro.qos.fault_tolerance.resilience.CircuitBreaker` — per-server
  closed/open/half-open breaker with fail-fast and probing;
- :class:`~repro.qos.fault_tolerance.deadline.DeadlineBudget` /
  :class:`~repro.qos.fault_tolerance.deadline.DeadlineShed` — deadline
  propagation client-side, expired-work shedding server-side;
- :class:`~repro.qos.fault_tolerance.degrade.Degrade` — serve last-known-good
  (stale-marked) values when every other layer has given up.
"""

from repro.qos.fault_tolerance.active import ActiveRep
from repro.qos.fault_tolerance.passive import PassiveRep, PassiveRepServer
from repro.qos.fault_tolerance.acceptance import FirstSuccess, MajorityVote
from repro.qos.fault_tolerance.total_order import TotalOrder
from repro.qos.fault_tolerance.retransmit import Retransmit
from repro.qos.fault_tolerance.resilience import CircuitBreaker, RetryBackoff
from repro.qos.fault_tolerance.deadline import DeadlineBudget, DeadlineShed
from repro.qos.fault_tolerance.degrade import Degrade, Stale
from repro.qos.fault_tolerance.logging_recovery import RequestLog, replay_log
from repro.qos.fault_tolerance.membership import FailureDetector

__all__ = [
    "ActiveRep",
    "PassiveRep",
    "PassiveRepServer",
    "FirstSuccess",
    "MajorityVote",
    "TotalOrder",
    "Retransmit",
    "RetryBackoff",
    "CircuitBreaker",
    "DeadlineBudget",
    "DeadlineShed",
    "Degrade",
    "Stale",
    "RequestLog",
    "replay_log",
    "FailureDetector",
]
