"""Fault-tolerance micro-protocols (paper section 3.2).

Replication:

- :class:`~repro.qos.fault_tolerance.active.ActiveRep` — active
  replication: the request goes to all replicas, all non-crashed replicas
  reply;
- :class:`~repro.qos.fault_tolerance.passive.PassiveRep` (client) and
  :class:`~repro.qos.fault_tolerance.passive.PassiveRepServer` (server) —
  passive replication: the designated primary replies and forwards state
  updates to the backups; the client fails over on primary failure.

Acceptance semantics (when is a request "completed"?):

- default (in ClientBase): first reply, success or failure;
- :class:`~repro.qos.fault_tolerance.acceptance.FirstSuccess` — first
  successful execution;
- :class:`~repro.qos.fault_tolerance.acceptance.MajorityVote` — majority
  value of the non-failed replicas.

Ordering: :class:`~repro.qos.fault_tolerance.total_order.TotalOrder` — a
sequencer-based total order across replicas (with the coordinator-failover
extension the paper leaves as future work).

Extensions beyond the prototype: :class:`~repro.qos.fault_tolerance.retransmit.Retransmit`
(transient network failures), request logging + recovery
(:mod:`~repro.qos.fault_tolerance.logging_recovery`), and a client-side
failure detector (:mod:`~repro.qos.fault_tolerance.membership`).
"""

from repro.qos.fault_tolerance.active import ActiveRep
from repro.qos.fault_tolerance.passive import PassiveRep, PassiveRepServer
from repro.qos.fault_tolerance.acceptance import FirstSuccess, MajorityVote
from repro.qos.fault_tolerance.total_order import TotalOrder
from repro.qos.fault_tolerance.retransmit import Retransmit
from repro.qos.fault_tolerance.logging_recovery import RequestLog, replay_log
from repro.qos.fault_tolerance.membership import FailureDetector

__all__ = [
    "ActiveRep",
    "PassiveRep",
    "PassiveRepServer",
    "FirstSuccess",
    "MajorityVote",
    "TotalOrder",
    "Retransmit",
    "RequestLog",
    "replay_log",
    "FailureDetector",
]
