"""Retransmission of lost requests (extension).

"Currently we assume the underlying platform handles network failures, but
it would be easy to add retransmission micro-protocols." (paper §3.2)
This is that micro-protocol: a client-side handler bound early to
``invokeFailure`` that re-raises ``readyToSend`` for the same replica when
the failure looks transient (message loss / connection reset / timeout),
with a bounded attempt count and optional delay between attempts.

Host-crash failures (:class:`~repro.util.errors.ServerFailedError`) are
*not* retried — those are the replication protocols' job; retrying a dead
host would only slow failover down.

Safe because the server side suppresses duplicates when PassiveRepServer is
configured, and because a lost *request* never executed at all; a lost
*reply* after execution re-executes the operation, so pair this with the
duplicate-suppression cache for non-idempotent operations (the
deployment-level guidance CORBA's at-most-once semantics encode).
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_FIRST, Occurrence
from repro.core.events import EV_INVOKE_FAILURE, EV_READY_TO_SEND
from repro.core.request import Reply, Request
from repro.util.errors import is_retryable
from repro.util.log import get_logger

logger = get_logger("qos.retransmit")

ATTR_ATTEMPTS = "retransmit_attempts"


@register_micro_protocol("Retransmit")
class Retransmit(MicroProtocol):
    """Retry transiently failed invocations before anyone else reacts."""

    name = "Retransmit"

    def __init__(self, max_attempts: int = 3, retry_delay: float = 0.0):
        """``max_attempts`` counts total tries (first send included)."""
        super().__init__()
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._max_attempts = max_attempts
        self._retry_delay = retry_delay

    def start(self) -> None:
        self.bind(EV_INVOKE_FAILURE, self.maybe_retry, order=ORDER_FIRST)

    def maybe_retry(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        server: int = occurrence.args[1]
        reply: Reply = occurrence.args[2]
        if not self._is_transient(reply.exception):
            return  # let failover / the base returner handle it
        with request.mutex:
            attempts = request.attributes.get(ATTR_ATTEMPTS, {}).get(server, 1)
            if attempts >= self._max_attempts:
                return
            request.attributes.setdefault(ATTR_ATTEMPTS, {})[server] = attempts + 1
        logger.debug(
            "retransmitting %s to server %d (attempt %d)",
            request.operation, server, attempts + 1,
        )
        if self._retry_delay > 0.0:
            self.raise_event(
                EV_READY_TO_SEND, request, server, delay=self._retry_delay
            )
        else:
            self.raise_event(EV_READY_TO_SEND, request, server, mode="async")
        occurrence.halt()

    @staticmethod
    def _is_transient(exception: BaseException | None) -> bool:
        # One shared notion of "worth retrying" across all retry protocols.
        return is_retryable(exception)
