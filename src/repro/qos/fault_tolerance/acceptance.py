"""Acceptance semantics: when is a replicated request completed?

"The current prototype supports three different acceptance semantics …
ClientBase by default implements a policy useful for the non-replicated
case where the first reply (success or failure) to arrive is returned to
the client.  A second micro-protocol returns the result from the first
successful execution and a third returns the majority value from non-failed
replicas.  Both of these micro-protocols consist of one handler that is
executed before the base resultReturner."

Both protocols bind one handler to ``invokeSuccess`` *and* ``invokeFailure``
at :data:`~repro.cactus.events.ORDER_LATE` (before the base returner's
``ORDER_LAST``) and halt, so the base first-reply policy never runs while
they are configured.

A reply that reached the servant but raised an application exception counts
as a *successful execution with an exceptional outcome*: FirstSuccess
returns it (all replicas are deterministic, so retrying another replica
would reproduce it) and MajorityVote groups it like any other outcome.
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_LATE, Occurrence
from repro.core.client import SHARED_PLATFORM
from repro.core.events import EV_INVOKE_FAILURE, EV_INVOKE_SUCCESS
from repro.core.interfaces import ClientPlatform
from repro.core.request import Reply, Request
from repro.util.errors import ServerFailedError


def _outcome_key(reply: Reply) -> tuple:
    """A hashable equality key for a reply's outcome (value or exception)."""
    if reply.exception is not None:
        return ("exc", type(reply.exception).__name__, str(reply.exception))
    return ("val", repr(reply.value))


class _AcceptanceBase(MicroProtocol):
    """Common wiring: one decision handler on both completion events."""

    def start(self) -> None:
        self.bind(EV_INVOKE_SUCCESS, self.decide, order=ORDER_LATE)
        self.bind(EV_INVOKE_FAILURE, self.decide, order=ORDER_LATE)

    def _expected_replies(self) -> int:
        platform: ClientPlatform = self.shared.get(SHARED_PLATFORM)
        return platform.num_servers()

    def decide(self, occurrence: Occurrence) -> None:
        raise NotImplementedError


@register_micro_protocol("FirstSuccess")
class FirstSuccess(_AcceptanceBase):
    """Complete with the first reply whose invocation reached the servant."""

    name = "FirstSuccess"

    def decide(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        reply: Reply = occurrence.args[2]
        if reply.succeeded:
            request.complete_from_reply(reply)
        elif request.reply_count() >= self._expected_replies():
            # Every replica has answered and none succeeded.
            replies = request.replies()
            if all(r.failed for r in replies.values()):
                request.fail(
                    ServerFailedError(
                        f"all {len(replies)} replicas failed for {request.operation}"
                    )
                )
        occurrence.halt()  # override the base first-reply returner


@register_micro_protocol("MajorityVote")
class MajorityVote(_AcceptanceBase):
    """Complete with the value a majority of non-failed replicas agree on."""

    name = "MajorityVote"

    def decide(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        expected = self._expected_replies()
        majority = expected // 2 + 1
        with request.mutex:
            replies = request.replies()
            counts: dict[tuple, list[Reply]] = {}
            for reply in replies.values():
                if reply.succeeded:
                    counts.setdefault(_outcome_key(reply), []).append(reply)
            winner: list[Reply] | None = None
            for group in counts.values():
                if len(group) >= majority:
                    winner = group
                    break
            if winner is not None:
                request.complete_from_reply(winner[0])
            elif len(replies) >= expected:
                # Everyone answered; check whether a majority is still possible.
                best = max((len(g) for g in counts.values()), default=0)
                failures = sum(1 for r in replies.values() if r.failed)
                if best + 0 < majority:  # no group can grow any further
                    request.fail(
                        ServerFailedError(
                            f"no majority among {expected} replicas "
                            f"({failures} failed, largest agreement {best})"
                        )
                    )
        occurrence.halt()
