"""Sequencer-based total order (paper section 3.2).

"The TotalOrder micro-protocol ensures that all replicas receive requests
from multiple clients in a consistent total order.  Our prototype uses a
sequencer-based total ordering algorithm, where a coordinator determines
the ordering for each request, and multicasts it to the other replicas."

The three handlers of the paper, one-to-one:

- **assignOrder** (``readyToInvoke``, coordinator) — assigns the next
  sequence number to each new request and multicasts ``(request_id, seq)``
  to the other replicas in parallel (async submissions, the ActiveRep
  technique);
- **checkOrder** (``readyToInvoke``, all replicas) — "processes both
  requests and ordering information and releases any request that becomes
  eligible for execution": a request proceeds only when its sequence number
  is the next to execute; otherwise it parks (halting the handler chain
  keeps the servant uninvoked while the dispatch thread blocks in
  ``cactus_invoke``);
- **checkNext** (``invokeReturn``) — advances the execution counter and
  re-dispatches the parked request that became eligible.

Used with ActiveRep: every replica receives every request directly from the
client, so the order announcements are the only extra messages.

**Coordinator failover** (the paper: "although failure of the coordinator
is not currently tolerated, it would be simple to add this using standard
techniques") is implemented as an extension: a request waiting for its
order past ``order_timeout`` probes the sequencer; if it is dead, the
lowest-numbered live replica takes over and assigns orders for everything
still waiting.  This is the standard sequencer-handover, sound under the
paper's crash-failure model without partitions (the in-memory network's
partition injection is exactly what its tests use to show the limits).
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import Occurrence
from repro.core.events import (
    CONTROL_EVENT_PREFIX,
    EV_INVOKE_RETURN,
    EV_READY_TO_INVOKE,
)
from repro.core.interfaces import ControlMessage, ServerPlatform
from repro.core.platform import ScatterGather, threaded_reply_future
from repro.core.request import Request
from repro.core.server import SHARED_PLATFORM
from repro.qos.base import server_replica_ids
from repro.util.log import get_logger

logger = get_logger("qos.total_order")

CONTROL_ORDER = "order"

#: Handler orders on readyToInvoke: timeliness protocols run earlier (2) so
#: queuing happens before sequencing (the paper's conflict resolution), the
#: duplicate check of PassiveRepServer uses 0, the servant runs at 100.
ORDER_ASSIGN = 5
ORDER_CHECK = 10

ATTR_ELIGIBLE = "to_eligible"


@register_micro_protocol("TotalOrder")
class TotalOrder(MicroProtocol):
    """Consistent request execution order across replicas."""

    name = "TotalOrder"

    def __init__(self, order_timeout: float = 2.0):
        super().__init__()
        self._order_timeout = order_timeout
        self._stopped = False
        # Protected by self.shared.lock:
        self._orders: dict[str, int] = {}  # request_id -> seq
        self._next_seq = 1  # next sequence number to execute
        self._counter = 1  # sequencer: next sequence number to assign
        self._parked: dict[int, Request] = {}  # seq -> request awaiting its turn
        self._unordered: dict[str, Request] = {}  # request_id -> awaiting order
        self._unordered_since: dict[str, float] = {}  # request_id -> clock time
        self._sequencer = 1

    def start(self) -> None:
        self.bind(EV_READY_TO_INVOKE, self.assign_order, order=ORDER_ASSIGN)
        self.bind(EV_READY_TO_INVOKE, self.check_order, order=ORDER_CHECK)
        self.bind(EV_INVOKE_RETURN, self.check_next)
        self.bind(CONTROL_EVENT_PREFIX + CONTROL_ORDER, self.on_order)
        # One periodic watchdog serves every waiting request (per-request
        # timers would churn a timer thread per request).
        self._arm_watchdog()

    def stop(self) -> None:
        self._stopped = True
        super().stop()

    # -- sequencer side ---------------------------------------------------

    def _platform(self) -> ServerPlatform:
        return self.shared.get(SHARED_PLATFORM)

    def assign_order(self, occurrence: Occurrence) -> None:
        """Coordinator: allocate a sequence number and announce it."""
        request: Request = occurrence.args[0]
        platform = self._platform()
        with self.shared.lock:
            if platform.my_replica() != self._sequencer:
                return
            if request.request_id in self._orders:
                return  # already ordered (re-dispatch after parking)
            seq = self._counter
            self._counter += 1
            self._orders[request.request_id] = seq
        self._announce(request.request_id, seq)

    def _announce(self, request_id: str, seq: int) -> None:
        """Multicast the order: one pipelined submit pass, one drain task.

        Every peer's announcement is submitted non-blocking back-to-back
        (the async engine coalesces them into one syscall); a single
        runtime task then drains the outcomes — a crashed replica's
        CommunicationError is its branch outcome (ignored: it will not
        execute anything anyway), and consuming each branch runs the
        substrate's binding hygiene off the sequencing thread.  The group
        comes from :func:`~repro.qos.base.server_replica_ids`, so sparse
        sharded id spaces are announced to correctly.
        """
        platform = self._platform()
        me = platform.my_replica()
        payload = {"request_id": request_id, "seq": seq}
        scatter = ScatterGather()
        for replica in server_replica_ids(platform):
            if replica != me:
                scatter.submit(
                    replica,
                    lambda replica=replica: self._announce_one(platform, replica, payload),
                )
        if scatter.submitted:
            self.composite.runtime.submit(self._drain_announcements, scatter)

    @staticmethod
    def _announce_one(platform: ServerPlatform, replica: int, payload: dict):
        invoke_async = getattr(platform, "peer_invoke_async", None)
        if invoke_async is not None:
            return invoke_async(replica, CONTROL_ORDER, payload)
        return threaded_reply_future(
            lambda: platform.peer_invoke(replica, CONTROL_ORDER, payload)
        )

    @staticmethod
    def _drain_announcements(scatter: ScatterGather) -> None:
        scatter.gather_all()

    # -- all replicas --------------------------------------------------------

    def check_order(self, occurrence: Occurrence) -> None:
        """Park the request unless its sequence number is next."""
        request: Request = occurrence.args[0]
        with self.shared.lock:
            seq = self._orders.get(request.request_id)
            if seq is None:
                # Backup saw the request before the order announcement.
                self._unordered[request.request_id] = request
                self._unordered_since[request.request_id] = (
                    self.composite.runtime.clock.now()
                )
                occurrence.halt()
                return
            if seq != self._next_seq:
                self._parked[seq] = request
                occurrence.halt()
                return
            request.attributes[ATTR_ELIGIBLE] = True
        # seq == next: fall through to the servant invocation.

    def check_next(self, occurrence: Occurrence) -> None:
        """Advance the counter; release the request that became eligible."""
        request: Request = occurrence.args[0]
        released: Request | None = None
        with self.shared.lock:
            seq = self._orders.get(request.request_id)
            if seq is None or request.attributes.get("to_done"):
                return
            request.attributes["to_done"] = True
            self._next_seq = max(self._next_seq, seq + 1)
            released = self._parked.pop(self._next_seq, None)
        if released is not None:
            self.raise_event(EV_READY_TO_INVOKE, released, mode="async")

    def on_order(self, occurrence: Occurrence) -> None:
        """Record an order announcement; re-dispatch a waiting request."""
        message: ControlMessage = occurrence.args[0]
        request_id = message.payload["request_id"]
        seq = int(message.payload["seq"])
        with self.shared.lock:
            self._orders[request_id] = seq
            self._counter = max(self._counter, seq + 1)
            waiting = self._unordered.pop(request_id, None)
            self._unordered_since.pop(request_id, None)
        if waiting is not None:
            self.raise_event(EV_READY_TO_INVOKE, waiting, mode="async")
        message.respond(True)

    # -- coordinator failover (extension) ---------------------------------------

    def _arm_watchdog(self) -> None:
        self.composite.runtime.submit_delayed(
            self._order_timeout, self._watchdog, cancelled=lambda: self._stopped
        )

    def _watchdog(self) -> None:
        """Probe the sequencer if any request has waited a full timeout."""
        if self._stopped:
            return
        try:
            platform = self._platform()
            now = self.composite.runtime.clock.now()
            with self.shared.lock:
                overdue = any(
                    now - since >= self._order_timeout
                    for since in self._unordered_since.values()
                )
                sequencer = self._sequencer
            if overdue and sequencer != platform.my_replica():
                if not platform.peer_status(sequencer):
                    self._elect_sequencer()
        finally:
            if not self._stopped:
                self._arm_watchdog()

    def _elect_sequencer(self) -> None:
        """Lowest-numbered live replica becomes the sequencer."""
        platform = self._platform()
        me = platform.my_replica()
        new_sequencer = me
        # Lowest-numbered live replica wins; the id space may be sparse.
        for replica in sorted(server_replica_ids(platform)):
            if replica == me:
                new_sequencer = min(new_sequencer, replica)
                break
            if platform.peer_status(replica):
                new_sequencer = replica
                break
        logger.warning(
            "sequencer %d unreachable; replica %d elects sequencer %d",
            self._sequencer, me, new_sequencer,
        )
        to_order: list[Request] = []
        with self.shared.lock:
            self._sequencer = new_sequencer
            if new_sequencer != me:
                return
            # Assign orders for everything waiting, deterministically.
            self._counter = max(self._counter, self._next_seq)
            for rid in sorted(self._unordered):
                self._orders[rid] = self._counter
                self._counter += 1
                to_order.append(self._unordered.pop(rid))
                self._unordered_since.pop(rid, None)
        for request in to_order:
            self._announce(request.request_id, self._orders[request.request_id])
            self.raise_event(EV_READY_TO_INVOKE, request, mode="async")

    # -- introspection (tests) -----------------------------------------------------

    def executed_prefix(self) -> int:
        """Sequence numbers executed so far (next_seq - 1)."""
        with self.shared.lock:
            return self._next_seq - 1

    @property
    def sequencer(self) -> int:
        with self.shared.lock:
            return self._sequencer
