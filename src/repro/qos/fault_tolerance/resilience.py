"""Production-grade retry and circuit-breaking micro-protocols (extension).

The paper's §3.2 names retransmission as an easy extension;
:class:`~repro.qos.fault_tolerance.retransmit.Retransmit` is the minimal
fixed-attempt version.  This module grows that idea into the two resilience
patterns heavy-traffic deployments actually run, expressed in the paper's
own idiom — composable micro-protocols over the CQoS event space:

- :class:`RetryBackoff` — exponential backoff with decorrelated jitter and a
  token-bucket *retry budget*, so a flaky link is ridden out without a
  retry storm amplifying an outage;
- :class:`CircuitBreaker` — a closed/open/half-open breaker per server
  binding that fails fast while a server is sick and probes it back to
  health, converting hammering into load-shedding.

Both delegate failure classification to
:func:`repro.util.errors.is_retryable`, the single shared notion of "worth
retrying" (lost message / reset / timeout: yes; crashed host / expired
deadline / open breaker: no).

Composition (client side, order matters within one order class)::

    [DeadlineBudget(0.5), CircuitBreaker(), RetryBackoff(), Degrade(), ClientBase()]

Counters (``composite.protocol_stats()``): RetryBackoff reports ``retries``,
``give_ups``, ``budget_exhausted``, ``deadline_abandoned``; CircuitBreaker
reports ``trips``, ``reopens``, ``recoveries``, ``rejected``, ``probes``.
"""

from __future__ import annotations

import random
import threading
from collections import deque

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import ORDER_EARLY, ORDER_FIRST, Occurrence
from repro.core.client import SHARED_PLATFORM
from repro.core.events import EV_INVOKE_FAILURE, EV_INVOKE_SUCCESS, EV_READY_TO_SEND
from repro.core.interfaces import ClientPlatform
from repro.core.request import Reply, Request
from repro.util.errors import (
    AdmissionRejectedError,
    CircuitOpenError,
    CommunicationError,
    DeadlineExceededError,
    is_retryable,
)
from repro.util.log import get_logger

logger = get_logger("qos.resilience")

#: request.attributes key: per-server attempt counts for RetryBackoff.
ATTR_RETRY_ATTEMPTS = "retry_backoff_attempts"
#: request.attributes key: per-server previous backoff delay (decorrelated jitter).
ATTR_RETRY_PREV_DELAY = "retry_backoff_prev_delay"
#: request.attributes key: True on requests the breaker let through as probes.
ATTR_BREAKER_PROBE = "circuit_breaker_probe"


@register_micro_protocol("RetryBackoff")
class RetryBackoff(MicroProtocol):
    """Retry transient failures with exponential backoff + jitter + budget.

    ``max_attempts`` counts total tries (first send included).  The delay
    before retry *k* is drawn with decorrelated jitter,
    ``min(max_delay, U(base_delay, prev_delay * 3))`` (AWS's recommendation),
    falling back to capped exponential ``base_delay * 2**(k-1)`` when
    ``jitter=False``.

    ``retry_budget`` caps *global* retries in flight-weighted terms: every
    retry spends one token, every successful invocation refills
    ``budget_refill`` tokens (up to the cap).  When the bucket is empty the
    failure propagates immediately — under a real outage the budget drains
    and the client degrades instead of amplifying traffic.

    Deadline-aware: when the request carries a deadline (see
    :class:`~repro.qos.fault_tolerance.deadline.DeadlineBudget`), a retry
    that could not complete before the deadline is abandoned.
    """

    name = "RetryBackoff"

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.02,
        max_delay: float = 1.0,
        jitter: bool = True,
        retry_budget: float | None = None,
        budget_refill: float = 0.1,
        seed: int | None = None,
    ):
        super().__init__()
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        self._max_attempts = max_attempts
        self._base_delay = base_delay
        self._max_delay = max_delay
        self._jitter = jitter
        self._budget_cap = retry_budget
        self._budget = retry_budget
        self._budget_refill = budget_refill
        self._budget_lock = threading.Lock()
        self._rng = random.Random(seed)

    def start(self) -> None:
        self.bind(EV_INVOKE_FAILURE, self.maybe_retry, order=ORDER_FIRST)
        self.bind(EV_INVOKE_SUCCESS, self.refill_budget, order=ORDER_FIRST)

    # -- handlers ----------------------------------------------------------

    def refill_budget(self, occurrence: Occurrence) -> None:
        if self._budget_cap is None:
            return
        with self._budget_lock:
            self._budget = min(self._budget_cap, self._budget + self._budget_refill)

    def maybe_retry(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        server: int = occurrence.args[1]
        reply: Reply = occurrence.args[2]
        # A server-side admission shed is not "retryable" in the shared
        # taxonomy (naive retry loops must not hammer an overloaded server),
        # but *this* protocol may retry it — after honouring the server's
        # Retry-After hint as a floor on the backoff delay.
        shed = isinstance(reply.exception, AdmissionRejectedError)
        if not shed and not is_retryable(reply.exception):
            return  # crashed host / spent deadline / open breaker: not ours
        with request.mutex:
            attempts = request.attributes.get(ATTR_RETRY_ATTEMPTS, {}).get(server, 1)
            if attempts >= self._max_attempts:
                self.incr("give_ups")
                return
            clock = self.composite.runtime.clock
            now = clock.now()
            if request.deadline_expired(now):
                self.incr("deadline_abandoned")
                return
            delay = self._next_delay(request, server, attempts)
            if shed:
                hint = getattr(reply.exception, "retry_after", None)
                if hint is not None:
                    delay = min(self._max_delay, max(delay, hint))
                self.incr("shed_backoffs")
            remaining = request.remaining_budget(now)
            if remaining is not None and delay >= remaining:
                # The retry could not possibly answer in time.
                self.incr("deadline_abandoned")
                return
            if not self._spend_token():
                self.incr("budget_exhausted")
                return
            request.attributes.setdefault(ATTR_RETRY_ATTEMPTS, {})[server] = attempts + 1
            request.attributes.setdefault(ATTR_RETRY_PREV_DELAY, {})[server] = delay
            request.attempt = attempts + 1
        self.incr("retries")
        logger.debug(
            "retrying %s on server %d (attempt %d, delay %.3fs)",
            request.operation, server, attempts + 1, delay,
        )
        if delay > 0.0:
            self.raise_event(EV_READY_TO_SEND, request, server, delay=delay)
        else:
            self.raise_event(EV_READY_TO_SEND, request, server, mode="async")
        occurrence.halt()

    # -- internals ---------------------------------------------------------

    def _next_delay(self, request: Request, server: int, attempts: int) -> float:
        if not self._jitter:
            return min(self._max_delay, self._base_delay * (2 ** (attempts - 1)))
        previous = request.attributes.get(ATTR_RETRY_PREV_DELAY, {}).get(
            server, self._base_delay
        )
        return min(
            self._max_delay, self._rng.uniform(self._base_delay, max(previous, self._base_delay) * 3)
        )

    def _spend_token(self) -> bool:
        if self._budget_cap is None:
            return True
        with self._budget_lock:
            if self._budget < 1.0:
                return False
            self._budget -= 1.0
            return True

    @property
    def remaining_budget(self) -> float | None:
        """Tokens left in the retry budget (None = unlimited)."""
        with self._budget_lock:
            return self._budget


class _BreakerState:
    """Mutable per-server breaker state (guarded by the breaker's lock)."""

    __slots__ = ("state", "consecutive_failures", "window", "opened_at", "probes")

    def __init__(self, window_size: int):
        self.state = "closed"
        self.consecutive_failures = 0
        self.window: deque[bool] = deque(maxlen=window_size)  # True = failure
        self.opened_at = 0.0
        self.probes = 0


@register_micro_protocol("CircuitBreaker")
class CircuitBreaker(MicroProtocol):
    """Per-server-binding circuit breaker (closed → open → half-open).

    Trips when ``failure_threshold`` consecutive communication failures are
    seen on a binding, or — when ``error_rate_threshold`` is set — when the
    failure fraction over the last ``window`` outcomes reaches it.  While
    open, ``readyToSend`` for that server is rejected locally with
    :class:`~repro.util.errors.CircuitOpenError` (no message is sent).
    After ``open_duration`` seconds the breaker turns half-open and lets up
    to ``half_open_probes`` requests through; a probe success closes the
    breaker (and rebinds the server — the paper's recovery path: "the bind()
    operation can also be used to rebind to a failed server"), a probe
    failure re-opens it.

    Self-inflicted rejections and deadline sheds do not count as server
    failures — the breaker measures the server's health, not the client's
    impatience.
    """

    name = "CircuitBreaker"

    def __init__(
        self,
        failure_threshold: int = 5,
        error_rate_threshold: float | None = None,
        window: int = 20,
        open_duration: float = 1.0,
        half_open_probes: int = 1,
    ):
        super().__init__()
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if error_rate_threshold is not None and not 0.0 < error_rate_threshold <= 1.0:
            raise ValueError("error_rate_threshold must be in (0, 1]")
        self._failure_threshold = failure_threshold
        self._error_rate_threshold = error_rate_threshold
        self._window_size = window
        self._open_duration = open_duration
        self._half_open_probes = half_open_probes
        self._lock = threading.Lock()
        self._servers: dict[int, _BreakerState] = {}

    def start(self) -> None:
        self.bind(EV_READY_TO_SEND, self.gate, order=ORDER_EARLY)
        self.bind(EV_INVOKE_SUCCESS, self.record_success, order=ORDER_FIRST)
        self.bind(EV_INVOKE_FAILURE, self.record_failure, order=ORDER_FIRST)

    # -- introspection ------------------------------------------------------

    def state(self, server: int) -> str:
        """The breaker state for ``server``: closed, open, or half-open."""
        with self._lock:
            return self._servers.get(server, _BreakerState(1)).state

    # -- handlers ----------------------------------------------------------

    def gate(self, occurrence: Occurrence) -> None:
        request: Request = occurrence.args[0]
        server: int = occurrence.args[1]
        now = self.composite.runtime.clock.now()
        probe = False
        allowed = True
        with self._lock:
            breaker = self._breaker(server)
            if breaker.state == "open":
                if now - breaker.opened_at >= self._open_duration:
                    breaker.state = "half-open"
                    breaker.probes = 0
                else:
                    allowed = False
            if allowed and breaker.state == "half-open":
                if breaker.probes >= self._half_open_probes:
                    allowed = False
                else:
                    breaker.probes += 1
                    probe = True
        if not allowed:
            self._reject(request, server, occurrence)
            return
        if probe:
            self.incr("probes")
            request.attributes[ATTR_BREAKER_PROBE] = True
            # Rebind so a recovered server's stale failure mark is cleared
            # before the probe, otherwise server_status() short-circuits it.
            platform: ClientPlatform = self.shared.get(SHARED_PLATFORM)
            try:
                platform.bind(server)
            except CommunicationError:
                with self._lock:
                    self._reopen(self._breaker(server), now)
                self._reject(request, server, occurrence)

    def record_success(self, occurrence: Occurrence) -> None:
        server: int = occurrence.args[1]
        with self._lock:
            breaker = self._breaker(server)
            if breaker.state == "half-open":
                breaker.state = "closed"
                self.incr("recoveries")
            breaker.consecutive_failures = 0
            breaker.window.append(False)

    def record_failure(self, occurrence: Occurrence) -> None:
        server: int = occurrence.args[1]
        reply: Reply = occurrence.args[2]
        if not self._counts_as_failure(reply.exception):
            return
        now = self.composite.runtime.clock.now()
        tripped = False
        with self._lock:
            breaker = self._breaker(server)
            if breaker.state == "half-open":
                self._reopen(breaker, now)
                return
            if breaker.state == "open":
                return
            breaker.consecutive_failures += 1
            breaker.window.append(True)
            if breaker.consecutive_failures >= self._failure_threshold:
                tripped = True
            elif (
                self._error_rate_threshold is not None
                and len(breaker.window) >= self._window_size
                and sum(breaker.window) / len(breaker.window) >= self._error_rate_threshold
            ):
                tripped = True
            if tripped:
                breaker.state = "open"
                breaker.opened_at = now
        if tripped:
            self.incr("trips")
            logger.debug("circuit breaker tripped for server %d", server)

    # -- internals ---------------------------------------------------------

    def _breaker(self, server: int) -> _BreakerState:
        breaker = self._servers.get(server)
        if breaker is None:
            breaker = _BreakerState(self._window_size)
            self._servers[server] = breaker
        return breaker

    def _reopen(self, breaker: _BreakerState, now: float) -> None:
        breaker.state = "open"
        breaker.opened_at = now
        breaker.probes = 0
        self.incr("reopens")

    def _reject(self, request: Request, server: int, occurrence: Occurrence) -> None:
        """Fail the send locally without touching the wire (lock NOT held:
        the raised invokeFailure runs arbitrary handlers in this thread)."""
        self.incr("rejected")
        reply = Reply(
            server=server,
            exception=CircuitOpenError(
                f"circuit open for server {server}: {request.operation} rejected"
            ),
            failed=True,
        )
        request.add_reply(reply)
        occurrence.halt()
        self.raise_event(EV_INVOKE_FAILURE, request, server, reply)

    @staticmethod
    def _counts_as_failure(exception: BaseException | None) -> bool:
        """Server-health failures only: not our own rejections, deadline
        sheds, or admission sheds (a shedding server is *alive* and
        protecting itself — tripping the breaker would double-punish it)."""
        if isinstance(
            exception,
            (CircuitOpenError, DeadlineExceededError, AdmissionRejectedError),
        ):
            return False
        return isinstance(exception, CommunicationError)
