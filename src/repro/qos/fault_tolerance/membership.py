"""Client-side failure detection (extension).

The paper's ``server_status()`` "only indicates if the server is running or
failed, but it could be extended" — and the base implementation learns of
failures only when an invocation fails.  :class:`FailureDetector` adds
proactive monitoring: a periodic probe of every replica (using the
platform's active ``probe()`` where available) that keeps the shared
failed-server set current and raises a ``membershipChange`` event when the
view changes.

With PassiveRep this converts failover from reactive (first request after a
crash pays a failed invocation) to proactive, and — because ``probe()``
rebinds — automatically reinstates a recovered primary.
"""

from __future__ import annotations

from repro.cactus.composite import MicroProtocol
from repro.cactus.config import register_micro_protocol
from repro.cactus.events import Occurrence
from repro.core.client import SHARED_FAILED_SERVERS, SHARED_PLATFORM
from repro.core.interfaces import ClientPlatform

EV_MEMBERSHIP_CHANGE = "membershipChange"
EV_FD_TICK = "failureDetectorTick"


@register_micro_protocol("FailureDetector")
class FailureDetector(MicroProtocol):
    """Periodically probe all replicas; maintain the failed-server view."""

    name = "FailureDetector"

    def __init__(self, period: float = 0.5):
        super().__init__()
        self._period = period
        self._stopped = False

    def start(self) -> None:
        self.bind(EV_FD_TICK, self.on_tick)
        self.raise_event(EV_FD_TICK, delay=self._period)

    def stop(self) -> None:
        self._stopped = True
        super().stop()

    def probe_now(self) -> set[int]:
        """Probe every replica once; return the new failed set."""
        platform: ClientPlatform = self.shared.get(SHARED_PLATFORM)
        failed: set = self.shared.get(SHARED_FAILED_SERVERS)
        new_failed: set[int] = set()
        # The directory view owns the replica id space: sharded placements
        # produce legitimately sparse logical ids, so probing must iterate
        # the view's ids, never assume a contiguous range(1, N+1).
        server_ids = getattr(platform, "server_ids", None)
        replicas = (
            server_ids()
            if server_ids is not None
            else tuple(range(1, platform.num_servers() + 1))
        )
        for server in replicas:
            probe = getattr(platform, "probe", None)
            alive = probe(server) if probe is not None else platform.server_status(server)
            if not alive:
                new_failed.add(server)
        with self.shared.lock:
            old = set(failed)
            failed.clear()
            failed.update(new_failed)
        if old != new_failed:
            # A sharded client also records the change in its directory
            # view: the version bump is what invalidates stale bindings and
            # drives membershipChange visibility through the routing layer.
            # The view tracks *physical members*, so the probed logical
            # replica ids are translated through the current assignments.
            router = getattr(platform, "router", None)
            if router is not None and router.sharded:
                member_of = dict(
                    router.view().assignments(getattr(platform, "object_id", ""))
                )
                router.apply_membership_change(
                    member_of[r] for r in new_failed if r in member_of
                )
            self.raise_event(EV_MEMBERSHIP_CHANGE, old, set(new_failed), mode="async")
        return new_failed

    def on_tick(self, occurrence: Occurrence) -> None:
        if self._stopped:
            return
        self.probe_now()
        if not self._stopped:
            self.raise_event(EV_FD_TICK, delay=self._period)
