"""Portable Object Adapters.

A POA is a named registry of servants within one ORB.  Servants come in two
flavours, matching CORBA:

- *static* servants — plain Python objects whose typed methods are invoked
  through a :class:`~repro.orb.stubs.StaticSkeleton` built from interface
  metadata (registered with ``interface=``);
- *dynamic* servants — :class:`~repro.orb.dsi.DynamicImplementation`
  instances receiving every operation through ``invoke()`` (the CQoS
  skeleton path).

The paper's replica naming convention maps directly: the ``i``-th replica of
object ``OID`` creates POA ``"OID_agent_poa_i"`` and activates its CQoS
skeleton under object id ``"OID_CQoS_Skeleton"``.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.idl.compiler import InterfaceDef
from repro.orb.dsi import DynamicImplementation
from repro.orb.ior import IOR, make_object_key, repository_id
from repro.orb.stubs import StaticSkeleton
from repro.util.errors import BindError, ConfigurationError

if TYPE_CHECKING:
    from repro.orb.orb import Orb


class _Activation:
    """One activated object: either a static skeleton or a DSI servant."""

    def __init__(self, servant, skeleton: StaticSkeleton | None, type_id: str):
        self.servant = servant
        self.skeleton = skeleton
        self.type_id = type_id

    @property
    def is_dynamic(self) -> bool:
        return self.skeleton is None


class Poa:
    """A named object adapter; create via :meth:`repro.orb.orb.Orb.create_poa`."""

    def __init__(self, orb: "Orb", name: str):
        self._orb = orb
        self.name = name
        self._lock = threading.Lock()
        self._objects: dict[str, _Activation] = {}

    def activate_object(
        self,
        object_id: str,
        servant,
        interface: InterfaceDef | None = None,
    ) -> IOR:
        """Register ``servant`` under ``object_id`` and return its IOR.

        Static servants require ``interface`` metadata for dispatch;
        :class:`DynamicImplementation` servants must omit it.
        """
        if isinstance(servant, DynamicImplementation):
            if interface is not None:
                raise ConfigurationError("DSI servants do not take interface metadata")
            type_id = "IDL:omg.org/CORBA/Object:1.0"
            activation = _Activation(servant, None, type_id)
        else:
            if interface is None:
                raise ConfigurationError(
                    "static servants require interface metadata (interface=...)"
                )
            type_id = repository_id(interface.name)
            skeleton = StaticSkeleton(servant, interface, self._orb.compiled)
            activation = _Activation(servant, skeleton, type_id)
        with self._lock:
            if object_id in self._objects:
                raise ConfigurationError(
                    f"object id {object_id!r} already active in POA {self.name!r}"
                )
            self._objects[object_id] = activation
        return self.id_to_reference(object_id)

    def deactivate_object(self, object_id: str) -> None:
        with self._lock:
            self._objects.pop(object_id, None)

    def id_to_reference(self, object_id: str) -> IOR:
        """Build the IOR for an activated object id."""
        with self._lock:
            activation = self._objects.get(object_id)
        if activation is None:
            raise BindError(f"no object {object_id!r} in POA {self.name!r}")
        return IOR(
            type_id=activation.type_id,
            address=self._orb.endpoint_address,
            object_key=make_object_key(self.name, object_id),
        )

    def lookup(self, object_id: str) -> _Activation | None:
        with self._lock:
            return self._objects.get(object_id)

    def object_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._objects)

    def destroy(self) -> None:
        with self._lock:
            self._objects.clear()
        self._orb._drop_poa(self.name)
