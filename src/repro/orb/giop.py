"""GIOP-like wire messages, encoded with the CDR codec.

Two message types cover the request/reply paradigm the paper targets:

- **Request** — request id, object key, operation name, argument list, and a
  *service context* dict.  The service context is the standard CORBA slot
  for out-of-band data; CQoS uses it for piggybacked parameters (request
  priority, encryption markers, signatures, replica-control payloads).
- **Reply** — request id, status (NO_EXCEPTION / USER_EXCEPTION /
  SYSTEM_EXCEPTION), and a body: the return value, the user exception value
  (a registered IDL exception), or a ``{type, message}`` description of a
  system-level failure.

Frames begin with the 4-byte magic ``GIOP`` and a version octet so stray or
truncated frames fail loudly instead of mis-decoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.serialization.cdr import CdrInputStream, CdrOutputStream
from repro.serialization.streams import acquire_output_stream, release_output_stream
from repro.util.errors import MarshalError

# Encoders reuse pooled output streams instead of allocating a fresh
# bytearray per message.  The pool uses explicit acquire/release (see
# repro.serialization.streams) rather than the earlier thread-local slot:
# each marshal owns its stream for exactly the encode's duration, which
# stays correct when the async engine interleaves many logical requests on
# one event-loop thread.  Nested encodes (a value type whose registry
# encoder itself marshals) simply acquire a second stream.

_MAGIC = b"GIOP"
_VERSION = 1

MSG_REQUEST = 0
MSG_REPLY = 1

REPLY_NO_EXCEPTION = 0
REPLY_USER_EXCEPTION = 1
REPLY_SYSTEM_EXCEPTION = 2


@dataclass
class RequestMessage:
    request_id: int
    object_key: str
    operation: str
    arguments: list
    context: dict = field(default_factory=dict)
    response_expected: bool = True
    #: Compiled-stub path: pre-marshalled argument body (untagged typed
    #: CDR); mutually exclusive with ``arguments``.
    typed_body: bytes | None = None


@dataclass
class ReplyMessage:
    request_id: int
    status: int
    body: Any = None
    #: Compiled-skeleton path: pre-marshalled result body.
    typed_body: bytes | None = None


def _header(out: CdrOutputStream, msg_type: int) -> None:
    for byte in _MAGIC:
        out.write_octet(byte)
    out.write_octet(_VERSION)
    out.write_octet(msg_type)


def _check_header(stream: CdrInputStream) -> int:
    magic = bytes(stream.read_octet() for _ in range(4))
    if magic != _MAGIC:
        raise MarshalError(f"bad GIOP magic: {magic!r}")
    version = stream.read_octet()
    if version != _VERSION:
        raise MarshalError(f"unsupported GIOP version: {version}")
    return stream.read_octet()


def encode_request(message: RequestMessage) -> bytes:
    out = acquire_output_stream()
    try:
        _header(out, MSG_REQUEST)
        out.write_ulong(message.request_id)
        out.write_string(message.object_key)
        out.write_string(message.operation)
        out.write_bool(message.response_expected)
        if message.typed_body is not None:
            out.write_bool(True)
            out.write_bytes(message.typed_body)
        else:
            out.write_bool(False)
            out.write_ulong(len(message.arguments))
            for argument in message.arguments:
                out.write_any(argument)
        out.write_any(message.context)
        return out.getvalue()
    finally:
        release_output_stream(out)


def encode_reply(message: ReplyMessage) -> bytes:
    out = acquire_output_stream()
    try:
        _header(out, MSG_REPLY)
        out.write_ulong(message.request_id)
        out.write_octet(message.status)
        if message.typed_body is not None:
            out.write_bool(True)
            out.write_bytes(message.typed_body)
        else:
            out.write_bool(False)
            out.write_any(message.body)
        return out.getvalue()
    finally:
        release_output_stream(out)


def decode_message(frame: bytes) -> RequestMessage | ReplyMessage:
    """Decode either message type, dispatching on the header."""
    stream = CdrInputStream(frame)
    msg_type = _check_header(stream)
    if msg_type == MSG_REQUEST:
        request_id = stream.read_ulong()
        object_key = stream.read_string()
        operation = stream.read_string()
        response_expected = stream.read_bool()
        typed_body: bytes | None = None
        arguments: list = []
        if stream.read_bool():
            typed_body = stream.read_bytes()
        else:
            count = stream.read_ulong()
            arguments = [stream.read_any() for _ in range(count)]
        context = stream.read_any()
        return RequestMessage(
            request_id=request_id,
            object_key=object_key,
            operation=operation,
            arguments=arguments,
            context=context,
            response_expected=response_expected,
            typed_body=typed_body,
        )
    if msg_type == MSG_REPLY:
        request_id = stream.read_ulong()
        status = stream.read_octet()
        if stream.read_bool():
            return ReplyMessage(request_id=request_id, status=status, typed_body=stream.read_bytes())
        return ReplyMessage(request_id=request_id, status=status, body=stream.read_any())
    raise MarshalError(f"unknown GIOP message type: {msg_type}")
