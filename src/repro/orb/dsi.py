"""Dynamic Skeleton Interface.

CORBA's DSI lets a servant receive *any* operation through one generic
entry point instead of typed methods — which is precisely how the paper's
CQoS skeleton is implemented ("the skeleton provides a single generic
operation ``invoke()`` that is called by the POA regardless of which servant
method is invoked").

A :class:`DynamicImplementation` registers with a POA like any servant; the
ORB then wraps each incoming request in a :class:`ServerRequest` and calls
``invoke(server_request)``.  The implementation reads the operation name and
arguments and must complete the request with either ``set_result`` or
``set_exception`` before returning.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.util.errors import ReproError


class ServerRequest:
    """One in-flight dynamic invocation presented to a DSI servant."""

    _UNSET = object()

    def __init__(self, operation: str, arguments: list, context: dict):
        self._operation = operation
        self._arguments = arguments
        self._context = context
        self._result: Any = self._UNSET
        self._exception: BaseException | None = None

    @property
    def operation(self) -> str:
        return self._operation

    def arguments(self) -> list:
        return self._arguments

    def context(self) -> dict:
        """The request's service context (CQoS piggyback slot)."""
        return self._context

    def set_result(self, value: Any) -> None:
        if self.completed:
            raise ReproError("ServerRequest already completed")
        self._result = value

    def set_exception(self, exc: BaseException) -> None:
        if self.completed:
            raise ReproError("ServerRequest already completed")
        self._exception = exc

    @property
    def completed(self) -> bool:
        return self._result is not self._UNSET or self._exception is not None

    @property
    def result(self) -> Any:
        return None if self._result is self._UNSET else self._result

    @property
    def exception(self) -> BaseException | None:
        return self._exception


class DynamicImplementation(ABC):
    """Base class for DSI servants (the CQoS skeleton derives from this)."""

    @abstractmethod
    def invoke(self, server_request: ServerRequest) -> None:
        """Handle one request; must complete ``server_request``."""
