"""A CORBA-like ORB: the first of the two middleware substrates.

The paper's CORBA prototype leans on four ORB mechanisms, all reproduced
here from scratch:

- **IORs** (:mod:`repro.orb.ior`) — stringifiable interoperable object
  references carrying a type id, endpoint address, and object key;
- **POAs** (:mod:`repro.orb.poa`) — named object adapters with which
  servants register under object ids.  The CQoS replica naming convention
  ("``OID_agent_poa_i``" POAs holding "``OID_CQoS_Skeleton``" objects)
  works unchanged on top;
- **DII** (:mod:`repro.orb.dii`) — dynamic request construction used by the
  CQoS stub, with run-time conformance checks against interface metadata
  (this is the "convert the abstract request into a CORBA request" cost the
  paper measures);
- **DSI** (:mod:`repro.orb.dsi`) — a generic ``invoke(ServerRequest)``
  servant entry point used by the CQoS skeleton.

Requests travel as GIOP-like messages (:mod:`repro.orb.giop`) encoded with
the CDR codec over either transport from :mod:`repro.net`.
"""

from repro.orb.ior import IOR, ior_to_string, string_to_ior
from repro.orb.giop import (
    REPLY_NO_EXCEPTION,
    REPLY_SYSTEM_EXCEPTION,
    REPLY_USER_EXCEPTION,
    ReplyMessage,
    RequestMessage,
)
from repro.orb.dsi import DynamicImplementation, ServerRequest
from repro.orb.dii import DiiRequest
from repro.orb.poa import Poa
from repro.orb.orb import ObjectRef, Orb
from repro.orb.stubs import StaticSkeleton, make_static_stub_class
from repro.orb.naming import (
    NAMING_HOST,
    NamingClient,
    NamingService,
    naming_idl,
    start_naming_service,
)

__all__ = [
    "Orb",
    "ObjectRef",
    "Poa",
    "IOR",
    "ior_to_string",
    "string_to_ior",
    "DiiRequest",
    "DynamicImplementation",
    "ServerRequest",
    "StaticSkeleton",
    "make_static_stub_class",
    "RequestMessage",
    "ReplyMessage",
    "REPLY_NO_EXCEPTION",
    "REPLY_USER_EXCEPTION",
    "REPLY_SYSTEM_EXCEPTION",
    "NamingService",
    "NamingClient",
    "start_naming_service",
    "naming_idl",
    "NAMING_HOST",
]
