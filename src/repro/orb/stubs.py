"""Static stubs and skeletons generated from interface metadata.

These are the components a CORBA IDL compiler would emit: a client proxy
class with one typed method per operation (marshalling straight onto the
wire, no run-time interface lookups) and a server-side skeleton that
dispatches a decoded request to the servant's method.

The CQoS stub deliberately does *not* use this fast path — per the paper it
builds an abstract request first and then converts it to a platform request
via the DII, which is where the extra CORBA-side overhead in Table 1 comes
from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.idl.compiler import CompiledIdl, InterfaceDef, OperationDef
from repro.orb.typed_marshal import build_plans
from repro.util.errors import InvocationError

if TYPE_CHECKING:
    from repro.orb.ior import IOR
    from repro.orb.orb import Orb


class StaticStub:
    """Base class for generated static stubs; subclasses add typed methods."""

    def __init__(self, orb: "Orb", ior: "IOR"):
        self._orb = orb
        self._ior = ior

    @property
    def ior(self) -> "IOR":
        return self._ior


def _make_method(operation: OperationDef):
    arity = len(operation.params)
    name = operation.name

    if operation.oneway:

        def oneway_method(self, *args):
            if len(args) != arity:
                raise TypeError(f"{name}() takes {arity} arguments, got {len(args)}")
            self._orb.invoke_typed(
                self._ior, operation, list(args), response_expected=False
            )

        oneway_method.__name__ = name
        oneway_method.__doc__ = f"Oneway IDL operation {name!r} (no reply)."
        return oneway_method

    def method(self, *args):
        if len(args) != arity:
            raise TypeError(f"{name}() takes {arity} arguments, got {len(args)}")
        # Compiled marshalling: untagged typed CDR against the shared IDL —
        # the static-stub fast path the DII/CQoS route cannot take.
        return self._orb.invoke_typed(self._ior, operation, list(args))

    method.__name__ = name
    method.__doc__ = f"IDL operation {name!r}."
    return method


def make_static_stub_class(
    interface: InterfaceDef, compiled: CompiledIdl | None = None
) -> type:
    """Generate the static stub class for ``interface``.

    When the compiled-IDL tables are passed, marshalling plans for every
    operation are built here — at stub generation, the IDL-compiler moment —
    so no invocation ever pays the plan-compilation cost.  Without them the
    plans build lazily on first use (they cache on the ``OperationDef``).

    >>> StubCls = make_static_stub_class(compiled.interface("BankAccount"))
    >>> account = StubCls(orb, ior)
    >>> account.balance()
    """
    namespace: dict[str, Any] = {
        "__doc__": f"Static stub for IDL interface {interface.name}.",
        "__idl_interface__": interface,
    }
    for operation in interface.operations.values():
        namespace[operation.name] = _make_method(operation)
        if compiled is not None:
            build_plans(operation, compiled)
    return type(f"{interface.simple_name}Stub", (StaticStub,), namespace)


class StaticSkeleton:
    """Server-side dispatch of decoded requests to a typed servant."""

    def __init__(self, servant, interface: InterfaceDef, compiled: CompiledIdl):
        self._servant = servant
        self._interface = interface
        self._compiled = compiled
        # Skeleton creation is the server's IDL-compiler moment: build the
        # marshalling plans for every operation up front.
        for operation in interface.operations.values():
            build_plans(operation, compiled)

    @property
    def interface(self) -> InterfaceDef:
        return self._interface

    def dispatch(self, operation_name: str, arguments: list) -> Any:
        """Invoke the servant method; validate the result against the IDL.

        Application exceptions declared in ``raises`` propagate as-is (the
        ORB maps them to USER_EXCEPTION replies); anything else becomes an
        :class:`InvocationError` at the caller.
        """
        operation = self._interface.operation(operation_name)
        method = getattr(self._servant, operation_name, None)
        if method is None:
            raise InvocationError(
                "NoSuchMethod", f"servant lacks method {operation_name!r}"
            )
        result = method(*arguments)
        if not operation.oneway:
            operation.check_result(result, self._compiled)
        return result
