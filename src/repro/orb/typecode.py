"""TypeCodes: run-time IDL type descriptors for the DII.

CORBA's DII requires every argument to be packaged as a NamedValue carrying
a TypeCode; building the NVList is a real per-request cost of the dynamic
path (and absent from compiled static stubs).  :func:`typecode_of` derives
the IDL type of a run-time value by structural inspection, the way a
dynamic bridge must.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.idl.ast import BasicType, IdlType, NamedType, SequenceType
from repro.util.errors import MarshalError

_TC_BOOLEAN = BasicType("boolean")
_TC_LONGLONG = BasicType("long long")
_TC_DOUBLE = BasicType("double")
_TC_STRING = BasicType("string")
_TC_ANY = BasicType("any")
_TC_VOID = BasicType("void")


def typecode_of(value: Any) -> IdlType:
    """Derive the IDL TypeCode of a run-time value.

    Heterogeneous or empty sequences degrade to ``sequence<any>``; dicts
    (which plain IDL cannot name) and unknown objects degrade to ``any``,
    matching how dynamic bridges treat DynAny payloads.
    """
    if value is None:
        return _TC_VOID
    if value is True or value is False:
        return _TC_BOOLEAN
    if isinstance(value, int):
        return _TC_LONGLONG
    if isinstance(value, float):
        return _TC_DOUBLE
    if isinstance(value, str):
        return _TC_STRING
    if isinstance(value, (list, tuple)):
        element_codes = {str(typecode_of(item)) for item in value}
        if len(element_codes) == 1:
            return SequenceType(typecode_of(value[0]))
        return SequenceType(_TC_ANY)
    idl_name = getattr(type(value), "__idl_name__", None)
    if idl_name is not None:
        return NamedType(idl_name)
    return _TC_ANY


@dataclass
class NamedValue:
    """One DII argument: name, value, and its TypeCode."""

    name: str
    value: Any
    typecode: IdlType

    @classmethod
    def wrap(cls, index: int, value: Any) -> "NamedValue":
        return cls(name=f"arg{index}", value=value, typecode=typecode_of(value))


def build_nvlist(arguments: list) -> list[NamedValue]:
    """Package positional arguments as an NVList (the DII request body)."""
    if not isinstance(arguments, list):
        raise MarshalError("NVList requires a list of arguments")
    return [NamedValue.wrap(index, value) for index, value in enumerate(arguments)]
