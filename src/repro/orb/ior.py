"""Interoperable Object References.

An IOR names one CORBA object: its repository type id
(``IDL:bank/BankAccount:1.0`` style), the transport address of the ORB
serving it, and the object key (``poa_name|object_id``) that routes the
request inside that ORB.  ``IOR:<hex>`` stringification mirrors real CORBA:
the reference is CDR-encoded and hex-dumped so it can be mailed around as
opaque text, which is exactly how the naming service stores references.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serialization.cdr import CdrInputStream, CdrOutputStream
from repro.util.errors import MarshalError


@dataclass(frozen=True)
class IOR:
    """A reference to one object served by one ORB endpoint."""

    type_id: str  # repository id, e.g. "IDL:bank/BankAccount:1.0"
    address: str  # transport address, e.g. "server-1/giop"
    object_key: str  # "poa_name|object_id"

    @property
    def poa_name(self) -> str:
        return self.object_key.split("|", 1)[0]

    @property
    def object_id(self) -> str:
        return self.object_key.split("|", 1)[1]


def repository_id(scoped_interface_name: str) -> str:
    """Map an IDL scoped name to a CORBA-style repository id.

    >>> repository_id("bank::BankAccount")
    'IDL:bank/BankAccount:1.0'
    """
    return f"IDL:{scoped_interface_name.replace('::', '/')}:1.0"


def make_object_key(poa_name: str, object_id: str) -> str:
    if "|" in poa_name or "|" in object_id:
        raise MarshalError("POA names and object ids may not contain '|'")
    return f"{poa_name}|{object_id}"


def ior_to_string(ior: IOR) -> str:
    """Stringify an IOR as ``IOR:<hex of CDR encoding>``."""
    out = CdrOutputStream()
    out.write_string(ior.type_id)
    out.write_string(ior.address)
    out.write_string(ior.object_key)
    return "IOR:" + out.getvalue().hex()


def string_to_ior(text: str) -> IOR:
    """Parse a string produced by :func:`ior_to_string`."""
    if not text.startswith("IOR:"):
        raise MarshalError(f"not a stringified IOR: {text[:16]!r}")
    try:
        data = bytes.fromhex(text[4:])
    except ValueError as exc:
        raise MarshalError("corrupt IOR hex body") from exc
    stream = CdrInputStream(data)
    return IOR(
        type_id=stream.read_string(),
        address=stream.read_string(),
        object_key=stream.read_string(),
    )
