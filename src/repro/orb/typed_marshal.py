"""Compiled (typed) CDR marshalling for static stubs and skeletons.

Real CORBA's IDL compiler emits marshalling code that writes each value
according to its *declared* type — no per-value type tags, no run-time
dispatch on the receiving side, because both ends compiled the same IDL.
This module is that path: :func:`write_typed` / :func:`read_typed` encode a
value against an :class:`~repro.idl.ast.IdlType`, and the operation-level
helpers marshal whole argument lists and results.

The DII/DSI (and therefore CQoS) path cannot use it — a dynamic request's
types are only known per-value — which is precisely the compiled-vs-dynamic
cost asymmetry Table 1 measures on the CORBA side.

Structs marshal as their members in declaration order (no names on the
wire); ``any`` falls back to the tagged encoding.  Type errors surface as
:class:`~repro.util.errors.MarshalError` at the sender, matching compiled
stubs' compile-time guarantees as closely as a dynamic language can.
"""

from __future__ import annotations

from typing import Any

from repro.idl.ast import BasicType, IdlType, NamedType, SequenceType
from repro.idl.compiler import CompiledIdl, OperationDef
from repro.serialization.cdr import CdrInputStream, CdrOutputStream
from repro.util.errors import MarshalError


def write_typed(out: CdrOutputStream, idl_type: IdlType, value: Any, compiled: CompiledIdl) -> None:
    """Write ``value`` as its declared ``idl_type`` (untagged)."""
    if isinstance(idl_type, BasicType):
        kind = idl_type.kind
        if kind == "void":
            if value is not None:
                raise MarshalError(f"void value must be None, got {value!r}")
            return
        if kind == "boolean":
            if not isinstance(value, bool):
                raise MarshalError(f"boolean expected, got {value!r}")
            out.write_bool(value)
        elif kind == "octet":
            _check_int(kind, value, 0, 255)
            out.write_octet(value)
        elif kind == "short":
            _check_int(kind, value, -(2**15), 2**15 - 1)
            out.write_short(value)
        elif kind == "unsigned short":
            _check_int(kind, value, 0, 2**16 - 1)
            out.write_ushort(value)
        elif kind == "long":
            _check_int(kind, value, -(2**31), 2**31 - 1)
            out.write_long(value)
        elif kind == "unsigned long":
            _check_int(kind, value, 0, 2**32 - 1)
            out.write_ulong(value)
        elif kind == "long long":
            _check_int(kind, value, -(2**63), 2**63 - 1)
            out.write_longlong(value)
        elif kind == "unsigned long long":
            _check_int(kind, value, 0, 2**64 - 1)
            # CDR has no unsigned 64 write here; store as two ulongs.
            out.write_ulong(value >> 32)
            out.write_ulong(value & 0xFFFFFFFF)
        elif kind in ("float", "double"):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise MarshalError(f"{kind} expected, got {value!r}")
            out.write_double(float(value))
        elif kind == "string":
            if not isinstance(value, str):
                raise MarshalError(f"string expected, got {value!r}")
            out.write_string(value)
        elif kind == "any":
            out.write_any(value)
        else:  # pragma: no cover - parser limits the kinds
            raise MarshalError(f"unknown basic type {kind!r}")
        return
    if isinstance(idl_type, SequenceType):
        if not isinstance(value, (list, tuple)):
            raise MarshalError(f"sequence expected, got {value!r}")
        out.write_ulong(len(value))
        for item in value:
            write_typed(out, idl_type.element, item, compiled)
        return
    if isinstance(idl_type, NamedType):
        cls = compiled.structs.get(idl_type.name) or compiled.exceptions.get(idl_type.name)
        if cls is None:
            raise MarshalError(f"unresolved named type {idl_type.name!r}")
        if not isinstance(value, cls):
            raise MarshalError(f"{idl_type.name} instance expected, got {value!r}")
        member_types = getattr(cls, "__member_types__", {})
        for member in cls.__members__:
            write_typed(out, member_types[member], getattr(value, member), compiled)
        return
    raise MarshalError(f"unknown IDL type {idl_type!r}")


def read_typed(stream: CdrInputStream, idl_type: IdlType, compiled: CompiledIdl) -> Any:
    """Read a value of declared ``idl_type`` (inverse of :func:`write_typed`)."""
    if isinstance(idl_type, BasicType):
        kind = idl_type.kind
        if kind == "void":
            return None
        if kind == "boolean":
            return stream.read_bool()
        if kind == "octet":
            return stream.read_octet()
        if kind == "short":
            return stream.read_short()
        if kind == "unsigned short":
            return stream.read_ushort()
        if kind == "long":
            return stream.read_long()
        if kind == "unsigned long":
            return stream.read_ulong()
        if kind == "long long":
            return stream.read_longlong()
        if kind == "unsigned long long":
            high = stream.read_ulong()
            return (high << 32) | stream.read_ulong()
        if kind in ("float", "double"):
            return stream.read_double()
        if kind == "string":
            return stream.read_string()
        if kind == "any":
            return stream.read_any()
        raise MarshalError(f"unknown basic type {kind!r}")  # pragma: no cover
    if isinstance(idl_type, SequenceType):
        count = stream.read_ulong()
        return [read_typed(stream, idl_type.element, compiled) for _ in range(count)]
    if isinstance(idl_type, NamedType):
        cls = compiled.structs.get(idl_type.name) or compiled.exceptions.get(idl_type.name)
        if cls is None:
            raise MarshalError(f"unresolved named type {idl_type.name!r}")
        member_types = getattr(cls, "__member_types__", {})
        values = {
            member: read_typed(stream, member_types[member], compiled)
            for member in cls.__members__
        }
        return cls(**values)
    raise MarshalError(f"unknown IDL type {idl_type!r}")


def _check_int(kind: str, value: Any, low: int, high: int) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise MarshalError(f"{kind} expected, got {value!r}")
    if not low <= value <= high:
        raise MarshalError(f"{kind} out of range: {value}")


# -- operation-level helpers ---------------------------------------------------


def marshal_arguments(operation: OperationDef, args: list, compiled: CompiledIdl) -> bytes:
    """Compiled-stub argument marshalling: declared types, no tags."""
    if len(args) != len(operation.params):
        raise MarshalError(
            f"{operation.name}() takes {len(operation.params)} arguments, got {len(args)}"
        )
    out = CdrOutputStream()
    for param, value in zip(operation.params, args):
        write_typed(out, param.type, value, compiled)
    return out.getvalue()


def unmarshal_arguments(operation: OperationDef, body: bytes, compiled: CompiledIdl) -> list:
    """Compiled-skeleton argument unmarshalling."""
    stream = CdrInputStream(body)
    return [read_typed(stream, param.type, compiled) for param in operation.params]


def marshal_result(operation: OperationDef, value: Any, compiled: CompiledIdl) -> bytes:
    out = CdrOutputStream()
    write_typed(out, operation.return_type, value, compiled)
    return out.getvalue()


def unmarshal_result(operation: OperationDef, body: bytes, compiled: CompiledIdl) -> Any:
    return read_typed(CdrInputStream(body), operation.return_type, compiled)
