"""Compiled (typed) CDR marshalling for static stubs and skeletons.

Real CORBA's IDL compiler emits marshalling code that writes each value
according to its *declared* type — no per-value type tags, no run-time
dispatch on the receiving side, because both ends compiled the same IDL.
This module is that path: :func:`write_typed` / :func:`read_typed` encode a
value against an :class:`~repro.idl.ast.IdlType`, and the operation-level
helpers marshal whole argument lists and results.

The DII/DSI (and therefore CQoS) path cannot use it — a dynamic request's
types are only known per-value — which is precisely the compiled-vs-dynamic
cost asymmetry Table 1 measures on the CORBA side.

Structs marshal as their members in declaration order (no names on the
wire); ``any`` falls back to the tagged encoding.  Type errors surface as
:class:`~repro.util.errors.MarshalError` at the sender, matching compiled
stubs' compile-time guarantees as closely as a dynamic language can.
"""

from __future__ import annotations

from typing import Any

from repro.idl.ast import BasicType, IdlType, NamedType, SequenceType
from repro.idl.compiler import CompiledIdl, OperationDef
from repro.serialization.cdr import CdrInputStream, CdrOutputStream
from repro.serialization.compiled import SignaturePlan
from repro.util.errors import MarshalError


def write_typed(out: CdrOutputStream, idl_type: IdlType, value: Any, compiled: CompiledIdl) -> None:
    """Write ``value`` as its declared ``idl_type`` (untagged)."""
    if isinstance(idl_type, BasicType):
        kind = idl_type.kind
        if kind == "void":
            if value is not None:
                raise MarshalError(f"void value must be None, got {value!r}")
            return
        if kind == "boolean":
            if not isinstance(value, bool):
                raise MarshalError(f"boolean expected, got {value!r}")
            out.write_bool(value)
        elif kind == "octet":
            _check_int(kind, value, 0, 255)
            out.write_octet(value)
        elif kind == "short":
            _check_int(kind, value, -(2**15), 2**15 - 1)
            out.write_short(value)
        elif kind == "unsigned short":
            _check_int(kind, value, 0, 2**16 - 1)
            out.write_ushort(value)
        elif kind == "long":
            _check_int(kind, value, -(2**31), 2**31 - 1)
            out.write_long(value)
        elif kind == "unsigned long":
            _check_int(kind, value, 0, 2**32 - 1)
            out.write_ulong(value)
        elif kind == "long long":
            _check_int(kind, value, -(2**63), 2**63 - 1)
            out.write_longlong(value)
        elif kind == "unsigned long long":
            _check_int(kind, value, 0, 2**64 - 1)
            # CDR has no unsigned 64 write here; store as two ulongs.
            out.write_ulong(value >> 32)
            out.write_ulong(value & 0xFFFFFFFF)
        elif kind in ("float", "double"):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise MarshalError(f"{kind} expected, got {value!r}")
            out.write_double(float(value))
        elif kind == "string":
            if not isinstance(value, str):
                raise MarshalError(f"string expected, got {value!r}")
            out.write_string(value)
        elif kind == "any":
            out.write_any(value)
        else:  # pragma: no cover - parser limits the kinds
            raise MarshalError(f"unknown basic type {kind!r}")
        return
    if isinstance(idl_type, SequenceType):
        if not isinstance(value, (list, tuple)):
            raise MarshalError(f"sequence expected, got {value!r}")
        out.write_ulong(len(value))
        for item in value:
            write_typed(out, idl_type.element, item, compiled)
        return
    if isinstance(idl_type, NamedType):
        cls = compiled.structs.get(idl_type.name) or compiled.exceptions.get(idl_type.name)
        if cls is None:
            raise MarshalError(f"unresolved named type {idl_type.name!r}")
        if not isinstance(value, cls):
            raise MarshalError(f"{idl_type.name} instance expected, got {value!r}")
        member_types = getattr(cls, "__member_types__", {})
        for member in cls.__members__:
            write_typed(out, member_types[member], getattr(value, member), compiled)
        return
    raise MarshalError(f"unknown IDL type {idl_type!r}")


def read_typed(stream: CdrInputStream, idl_type: IdlType, compiled: CompiledIdl) -> Any:
    """Read a value of declared ``idl_type`` (inverse of :func:`write_typed`)."""
    if isinstance(idl_type, BasicType):
        kind = idl_type.kind
        if kind == "void":
            return None
        if kind == "boolean":
            return stream.read_bool()
        if kind == "octet":
            return stream.read_octet()
        if kind == "short":
            return stream.read_short()
        if kind == "unsigned short":
            return stream.read_ushort()
        if kind == "long":
            return stream.read_long()
        if kind == "unsigned long":
            return stream.read_ulong()
        if kind == "long long":
            return stream.read_longlong()
        if kind == "unsigned long long":
            high = stream.read_ulong()
            return (high << 32) | stream.read_ulong()
        if kind in ("float", "double"):
            return stream.read_double()
        if kind == "string":
            return stream.read_string()
        if kind == "any":
            return stream.read_any()
        raise MarshalError(f"unknown basic type {kind!r}")  # pragma: no cover
    if isinstance(idl_type, SequenceType):
        count = stream.read_ulong()
        return [read_typed(stream, idl_type.element, compiled) for _ in range(count)]
    if isinstance(idl_type, NamedType):
        cls = compiled.structs.get(idl_type.name) or compiled.exceptions.get(idl_type.name)
        if cls is None:
            raise MarshalError(f"unresolved named type {idl_type.name!r}")
        member_types = getattr(cls, "__member_types__", {})
        values = {
            member: read_typed(stream, member_types[member], compiled)
            for member in cls.__members__
        }
        return cls(**values)
    raise MarshalError(f"unknown IDL type {idl_type!r}")


def _check_int(kind: str, value: Any, low: int, high: int) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise MarshalError(f"{kind} expected, got {value!r}")
    if not low <= value <= high:
        raise MarshalError(f"{kind} out of range: {value}")


# -- operation-level helpers ---------------------------------------------------
#
# These delegate to per-signature compiled plans
# (:mod:`repro.serialization.compiled`): the IDL type tree is walked once per
# operation to build flat pack/unpack programs, and every subsequent call
# replays the program.  The wire bytes are identical to the recursive
# :func:`write_typed` path above, which remains the reference encoder (and
# the per-value entry point for struct members and ``any`` payloads).


def build_plans(operation: OperationDef, compiled: CompiledIdl):
    """Return ``(argument_plan, result_plan)`` for ``operation``, cached.

    The cache lives on the ``OperationDef`` itself and is keyed by the
    compiled-IDL table identity, since plans bind struct classes from it.
    Called eagerly at stub/skeleton creation so the first invocation already
    runs compiled."""
    cached = getattr(operation, "_marshal_plans", None)
    if cached is not None and cached[0] is compiled:
        return cached[1], cached[2]
    argument_plan = SignaturePlan([param.type for param in operation.params], compiled)
    result_plan = SignaturePlan([operation.return_type], compiled)
    operation._marshal_plans = (compiled, argument_plan, result_plan)
    return argument_plan, result_plan


def marshal_arguments(operation: OperationDef, args: list, compiled: CompiledIdl) -> bytes:
    """Compiled-stub argument marshalling: declared types, no tags."""
    if len(args) != len(operation.params):
        raise MarshalError(
            f"{operation.name}() takes {len(operation.params)} arguments, got {len(args)}"
        )
    argument_plan, _ = build_plans(operation, compiled)
    return argument_plan.marshal(args)


def unmarshal_arguments(operation: OperationDef, body: bytes, compiled: CompiledIdl) -> list:
    """Compiled-skeleton argument unmarshalling."""
    argument_plan, _ = build_plans(operation, compiled)
    return argument_plan.unmarshal(body)


def marshal_result(operation: OperationDef, value: Any, compiled: CompiledIdl) -> bytes:
    _, result_plan = build_plans(operation, compiled)
    return result_plan.marshal([value])


def unmarshal_result(operation: OperationDef, body: bytes, compiled: CompiledIdl) -> Any:
    _, result_plan = build_plans(operation, compiled)
    return result_plan.unmarshal(body)[0]
