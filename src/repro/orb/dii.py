"""Dynamic Invocation Interface.

The DII builds a request at run time instead of through a generated stub:
create a request from an object reference, add arguments, ``invoke()``, read
the return value.  This is the path the paper's CQoS stub uses to turn the
abstract CQoS request into a CORBA request — and the reason Table 1's CQoS
overhead is larger on CORBA than RMI: the dynamic path pays for request
object construction and run-time conformance checks against interface
metadata (the stand-in for real CORBA's interface-repository consultation),
costs the static stub's compiled marshalling avoids.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.orb.ior import repository_id
from repro.orb.typecode import NamedValue
from repro.util.errors import ReproError

if TYPE_CHECKING:
    from repro.orb.orb import ObjectRef


class DiiRequest:
    """One dynamically constructed request (CORBA ``Request`` analog)."""

    _PENDING = object()

    def __init__(self, target: "ObjectRef", operation: str):
        self._target = target
        self._operation = operation
        self._nvlist: list[NamedValue] = []
        self._context: dict = {}
        self._result: Any = self._PENDING
        self._exception: BaseException | None = None
        self._deferred = None  # ReplyFuture from send_deferred()

    @property
    def operation(self) -> str:
        return self._operation

    @property
    def _arguments(self) -> list:
        return [nv.value for nv in self._nvlist]

    def add_arg(self, value: Any) -> "DiiRequest":
        """Append an argument (packaged as a NamedValue with its TypeCode).

        Deriving the TypeCode is the per-argument cost the dynamic path
        pays that compiled static stubs do not — the source of the larger
        CORBA-side CQoS overhead the paper measures in Table 1.
        """
        self._nvlist.append(NamedValue.wrap(len(self._nvlist), value))
        return self

    def nvlist(self) -> list[NamedValue]:
        """The request's NVList (inspection / tests)."""
        return list(self._nvlist)

    def set_context(self, context: dict) -> "DiiRequest":
        """Replace the request's service context (piggyback slot)."""
        self._context = dict(context)
        return self

    def context(self) -> dict:
        return self._context

    def _check_against_metadata(self) -> None:
        """Run-time typing: consult interface metadata when it is known.

        References to DSI servants carry the generic ``CORBA/Object`` type
        id, for which no metadata exists — those requests go through
        unchecked, exactly like real DII against an untyped reference.
        """
        compiled = self._target._orb.compiled
        for interface in compiled.interfaces.values():
            if repository_id(interface.name) == self._target.ior.type_id:
                operation = interface.operation(self._operation)
                operation.check_args(tuple(self._arguments), compiled)
                return

    def invoke(self) -> None:
        """Synchronously invoke; result or exception is stored, not raised."""
        self._check_against_metadata()
        orb = self._target._orb
        try:
            self._result = orb.invoke(
                self._target.ior, self._operation, list(self._arguments), self._context
            )
            self._exception = None
        except BaseException as exc:  # noqa: BLE001 - DII stores the outcome
            self._exception = exc
            self._result = self._PENDING

    def send_deferred(self):
        """CORBA deferred-synchronous invoke: submit now, harvest later.

        Returns the underlying ReplyFuture (also retained for
        :meth:`poll_response`/:meth:`get_response`).  The request leaves
        with the same wire bytes as :meth:`invoke`; only the wait moves.
        """
        self._check_against_metadata()
        orb = self._target._orb
        self._deferred = orb.invoke_async(
            self._target.ior, self._operation, list(self._arguments), self._context
        )
        return self._deferred

    def poll_response(self) -> bool:
        """True once a deferred invocation's reply has arrived."""
        if self._deferred is None:
            raise ReproError("request has not been sent deferred")
        return self._deferred.done()

    def get_response(self, timeout: float | None = None) -> None:
        """Harvest a deferred invocation; stores the outcome like invoke()."""
        if self._deferred is None:
            raise ReproError("request has not been sent deferred")
        try:
            self._result = self._deferred.result(timeout)
            self._exception = None
        except BaseException as exc:  # noqa: BLE001 - DII stores the outcome
            self._exception = exc
            self._result = self._PENDING

    def send_oneway(self) -> None:
        """Fire-and-forget send; no reply is waited for."""
        self._check_against_metadata()
        orb = self._target._orb
        orb.invoke(
            self._target.ior,
            self._operation,
            list(self._arguments),
            self._context,
            response_expected=False,
        )
        self._result = None
        self._exception = None

    def exception(self) -> BaseException | None:
        return self._exception

    def return_value(self) -> Any:
        """Return the result; re-raise the invocation's exception if any."""
        if self._exception is not None:
            raise self._exception
        if self._result is self._PENDING:
            raise ReproError("request has not been invoked")
        return self._result
