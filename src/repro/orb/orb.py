"""The ORB core: endpoint, request dispatch, and client-side invocation.

One :class:`Orb` per logical host serves every POA of that host from a
single transport listener (CORBA's one-endpoint-per-ORB model); the object
key inside each GIOP request routes to ``poa_name|object_id``.

Server-side dispatch:

- static servants go through their :class:`~repro.orb.stubs.StaticSkeleton`;
- DSI servants get a :class:`~repro.orb.dsi.ServerRequest` via ``invoke()``;
- IDL-declared exceptions travel back as USER_EXCEPTION replies carrying
  the exception value; everything else becomes a SYSTEM_EXCEPTION with the
  exception type name and message.

Oneway requests are acknowledged at the transport level immediately and
dispatched on a detached thread, so the caller never blocks on servant
execution — the CORBA ``oneway`` contract.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.idl.compiler import CompiledIdl, IdlRemoteException
from repro.net.pool import ConnectionPool
from repro.net.transport import Connection, Network, blocking_handler
from repro.orb import giop
from repro.orb.dii import DiiRequest
from repro.orb.dsi import ServerRequest
from repro.orb.ior import IOR, ior_to_string, string_to_ior
from repro.orb.poa import Poa
from repro.util.errors import (
    BindError,
    CommunicationError,
    InvocationError,
    ReproError,
    rehydrate_system_error,
)
from repro.util.ids import IdGenerator


class ObjectRef:
    """A client-side reference to a remote CORBA object."""

    def __init__(self, orb: "Orb", ior: IOR):
        self._orb = orb
        self.ior = ior

    def _create_request(self, operation: str) -> DiiRequest:
        """DII entry point: build a dynamic request on this reference."""
        return DiiRequest(self, operation)

    def invoke_op(self, operation: str, arguments: list, context: dict | None = None) -> Any:
        """Convenience synchronous invocation without a generated stub."""
        return self._orb.invoke(self.ior, operation, arguments, context or {})

    def invoke_op_async(self, operation: str, arguments: list, context: dict | None = None):
        """Non-blocking :meth:`invoke_op`; returns a ReplyFuture."""
        return self._orb.invoke_async(self.ior, operation, arguments, context or {})

    def __repr__(self) -> str:
        return f"ObjectRef({self.ior.type_id}, {self.ior.address}, {self.ior.object_key})"


class Orb:
    """One CORBA-like ORB bound to one logical host of a network."""

    def __init__(
        self,
        network: Network,
        host_name: str,
        compiled: CompiledIdl,
        service: str = "giop",
        naming_host: str = "naming",
    ):
        self._network = network
        self.host_name = host_name
        self.compiled = compiled
        self._service = service
        self._naming_host = naming_host
        self._host = network.host(host_name)
        self._listener = None
        self._poas: dict[str, Poa] = {}
        self._poa_lock = threading.Lock()
        self._request_ids = IdGenerator(host_name)
        self._pool = ConnectionPool(self._host)
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def endpoint_address(self) -> str:
        return f"{self.host_name}/{self._service}"

    def start(self) -> "Orb":
        """Open the server endpoint.  Client-only ORBs may skip this."""
        if not self._started:
            self._listener = self._host.listen(self._service, self._handle_frame)
            self._started = True
        return self

    def shutdown(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        self._started = False
        self._pool.close()
        with self._poa_lock:
            self._poas.clear()

    # -- POA management ------------------------------------------------------

    def create_poa(self, name: str) -> Poa:
        with self._poa_lock:
            if name in self._poas:
                raise ReproError(f"POA {name!r} already exists")
            poa = Poa(self, name)
            self._poas[name] = poa
            return poa

    def find_poa(self, name: str) -> Poa | None:
        with self._poa_lock:
            return self._poas.get(name)

    def _drop_poa(self, name: str) -> None:
        with self._poa_lock:
            self._poas.pop(name, None)

    # -- references ----------------------------------------------------------

    def object_to_string(self, ref: ObjectRef | IOR) -> str:
        ior = ref.ior if isinstance(ref, ObjectRef) else ref
        return ior_to_string(ior)

    def string_to_object(self, text: str) -> ObjectRef:
        return ObjectRef(self, string_to_ior(text))

    def get_object(self, ior: IOR) -> ObjectRef:
        return ObjectRef(self, ior)

    def resolve_initial_references(self, name: str) -> ObjectRef:
        """Bootstrap references; only ``"NameService"`` is defined."""
        if name != "NameService":
            raise BindError(f"unknown initial reference {name!r}")
        from repro.orb.naming import naming_service_ior

        return ObjectRef(self, naming_service_ior(self._naming_host, self._service))

    # -- client side -----------------------------------------------------------

    def _connection(self, address: str) -> Connection:
        return self._pool.get(address)

    def drop_connection(self, address: str, connection: Connection | None = None) -> None:
        """Forget a pooled connection (e.g. after a peer crash).

        Passing the failed ``connection`` evicts only that instance — a
        replacement another caller already pooled survives (see
        :meth:`repro.net.pool.ConnectionPool.drop`).
        """
        self._pool.drop(address, connection)

    def invoke(
        self,
        ior: IOR,
        operation: str,
        arguments: list,
        context: dict,
        response_expected: bool = True,
        timeout: float | None = None,
    ) -> Any:
        """Send one GIOP request (dynamic, any-tagged) and decode the reply.

        Raises the remote user exception instance for USER_EXCEPTION
        replies, :class:`InvocationError` for SYSTEM_EXCEPTION replies, and
        :class:`CommunicationError` subtypes for transport failures.
        """
        request = giop.RequestMessage(
            request_id=self._request_ids.next_int(),
            object_key=ior.object_key,
            operation=operation,
            arguments=arguments,
            context=context,
            response_expected=response_expected,
        )
        reply = self._exchange(ior, request, timeout)
        if reply is None:
            return None
        return reply.body

    def invoke_async(
        self,
        ior: IOR,
        operation: str,
        arguments: list,
        context: dict,
        response_expected: bool = True,
        timeout: float | None = None,
    ):
        """Non-blocking :meth:`invoke`: returns a ReplyFuture of the value.

        The request is encoded eagerly with the same encoder (the wire
        bytes are identical to the blocking path) and submitted without
        waiting; GIOP decode and exception-status mapping run lazily on the
        consumer's thread at ``result()`` time.  Never raises — submit-time
        failures settle the future.
        """
        request = giop.RequestMessage(
            request_id=self._request_ids.next_int(),
            object_key=ior.object_key,
            operation=operation,
            arguments=arguments,
            context=context,
            response_expected=response_expected,
        )
        frame = giop.encode_request(request)
        try:
            connection = self._connection(ior.address)
        except Exception as exc:  # noqa: BLE001 - delivered via the future
            from repro.net.transport import ReplyFuture

            return ReplyFuture.failed(exc)

        def on_error(exc: BaseException):
            if isinstance(exc, CommunicationError):
                self.drop_connection(ior.address, connection)
            raise exc

        def decode(reply_frame: bytes):
            reply = self._decode_reply(reply_frame)
            return None if reply is None else reply.body

        return connection.call_async(frame, timeout=timeout).then(decode, on_error)

    def invoke_typed(
        self,
        ior: IOR,
        operation_def,
        arguments: list,
        response_expected: bool = True,
        timeout: float | None = None,
    ) -> Any:
        """Compiled-stub invocation: untagged typed CDR both ways.

        ``operation_def`` is the :class:`~repro.idl.compiler.OperationDef`
        the stub was generated from; both ends marshal against it.
        """
        from repro.orb.typed_marshal import marshal_arguments, unmarshal_result

        request = giop.RequestMessage(
            request_id=self._request_ids.next_int(),
            object_key=ior.object_key,
            operation=operation_def.name,
            arguments=[],
            context={},
            response_expected=response_expected,
            typed_body=marshal_arguments(operation_def, arguments, self.compiled),
        )
        reply = self._exchange(ior, request, timeout)
        if reply is None:
            return None
        if reply.typed_body is not None:
            return unmarshal_result(operation_def, reply.typed_body, self.compiled)
        return reply.body

    def _exchange(
        self, ior: IOR, request: giop.RequestMessage, timeout: float | None
    ) -> giop.ReplyMessage | None:
        """Send a request, decode the reply, map exception statuses."""
        frame = giop.encode_request(request)
        connection = self._connection(ior.address)
        try:
            reply_frame = connection.call(frame, timeout=timeout)
        except CommunicationError:
            self.drop_connection(ior.address, connection)
            raise
        return self._decode_reply(reply_frame)

    def _decode_reply(self, reply_frame: bytes) -> giop.ReplyMessage:
        """Decode a raw reply frame; map GIOP exception statuses."""
        reply = giop.decode_message(reply_frame)
        if not isinstance(reply, giop.ReplyMessage):
            raise CommunicationError("expected a GIOP reply message")
        if reply.status == giop.REPLY_NO_EXCEPTION:
            return reply
        if reply.status == giop.REPLY_USER_EXCEPTION:
            if isinstance(reply.body, BaseException):
                raise reply.body
            raise InvocationError("UserException", repr(reply.body))
        body = reply.body if isinstance(reply.body, dict) else {}
        raise rehydrate_system_error(
            body.get("type", "SystemException"), body.get("message", "")
        )

    # -- server side -------------------------------------------------------------

    # Servant dispatch can block (request.wait, replica forwarding): the
    # async engine must keep it off the event loop.
    @blocking_handler
    def _handle_frame(self, frame: bytes) -> bytes:
        message = giop.decode_message(frame)
        if not isinstance(message, giop.RequestMessage):
            return giop.encode_reply(
                giop.ReplyMessage(
                    request_id=0,
                    status=giop.REPLY_SYSTEM_EXCEPTION,
                    body={"type": "BadMessage", "message": "expected a request"},
                )
            )
        if not message.response_expected:
            # Oneway: acknowledge at transport level, dispatch detached.
            threading.Thread(
                target=self._dispatch, args=(message,), daemon=True, name="orb-oneway"
            ).start()
            return giop.encode_reply(
                giop.ReplyMessage(
                    request_id=message.request_id, status=giop.REPLY_NO_EXCEPTION
                )
            )
        return giop.encode_reply(self._dispatch(message))

    def _dispatch(self, message: giop.RequestMessage) -> giop.ReplyMessage:
        try:
            if message.typed_body is not None:
                return self._dispatch_typed(message)
            result = self._dispatch_to_servant(message)
            return giop.ReplyMessage(
                request_id=message.request_id,
                status=giop.REPLY_NO_EXCEPTION,
                body=result,
            )
        except IdlRemoteException as exc:
            return giop.ReplyMessage(
                request_id=message.request_id,
                status=giop.REPLY_USER_EXCEPTION,
                body=exc,
            )
        except BaseException as exc:  # noqa: BLE001 - mapped to a system exception
            return giop.ReplyMessage(
                request_id=message.request_id,
                status=giop.REPLY_SYSTEM_EXCEPTION,
                body={"type": type(exc).__name__, "message": str(exc)},
            )

    def _dispatch_typed(self, message: giop.RequestMessage) -> giop.ReplyMessage:
        """Compiled-skeleton dispatch: typed bodies need interface metadata,
        so only static activations accept them (DSI servants cannot know the
        types — exactly real CORBA's constraint)."""
        from repro.orb.typed_marshal import marshal_result, unmarshal_arguments

        activation = self._find_activation(message.object_key)
        if activation.is_dynamic:
            raise InvocationError(
                "BadRequest", "typed request sent to a dynamic (DSI) servant"
            )
        operation = activation.skeleton.interface.operation(message.operation)
        arguments = unmarshal_arguments(operation, message.typed_body, self.compiled)
        result = activation.skeleton.dispatch(message.operation, arguments)
        return giop.ReplyMessage(
            request_id=message.request_id,
            status=giop.REPLY_NO_EXCEPTION,
            typed_body=marshal_result(operation, result, self.compiled),
        )

    def _find_activation(self, object_key: str):
        poa_name, _, object_id = object_key.partition("|")
        poa = self.find_poa(poa_name)
        if poa is None:
            raise BindError(f"no POA {poa_name!r} on host {self.host_name}")
        activation = poa.lookup(object_id)
        if activation is None:
            raise BindError(f"no object {object_id!r} in POA {poa_name!r}")
        return activation

    def _dispatch_to_servant(self, message: giop.RequestMessage) -> Any:
        activation = self._find_activation(message.object_key)
        if activation.is_dynamic:
            server_request = ServerRequest(
                message.operation, message.arguments, message.context
            )
            activation.servant.invoke(server_request)
            if not server_request.completed:
                raise InvocationError(
                    "IncompleteRequest",
                    f"DSI servant did not complete {message.operation!r}",
                )
            if server_request.exception is not None:
                raise server_request.exception
            return server_request.result
        return activation.skeleton.dispatch(message.operation, message.arguments)
