"""CORBA-style naming service, implemented as an ordinary CORBA object.

The service is itself defined in IDL and served through a static skeleton —
the same dogfooding real ORBs do.  Its well-known location (host
``"naming"``, POA ``"naming_poa"``, object id ``"NameService"``) is how
``Orb.resolve_initial_references("NameService")`` bootstraps without a
stringified IOR.

CQoS replica discovery uses it with the paper's naming convention: replica
``i`` of object ``OID`` binds its CQoS skeleton reference under
``"OID/replica-i"`` and clients enumerate ``list_names("OID/")``.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.idl.compiler import CompiledIdl, compile_idl
from repro.orb.ior import IOR, make_object_key, repository_id

if TYPE_CHECKING:
    from repro.orb.orb import ObjectRef, Orb

NAMING_HOST = "naming"
NAMING_POA = "naming_poa"
NAMING_OBJECT_ID = "NameService"

NAMING_IDL = """
module cos {
  exception NotFound { string name; };
  exception AlreadyBound { string name; };
  interface NamingService {
    void bind(in string name, in string ior) raises (AlreadyBound);
    void rebind(in string name, in string ior);
    string resolve(in string name) raises (NotFound);
    void unbind(in string name) raises (NotFound);
    sequence<string> list_names(in string prefix);
  };
};
"""

_compiled: CompiledIdl | None = None
_compile_lock = threading.Lock()


def naming_idl() -> CompiledIdl:
    """The compiled naming IDL (compiled once per process)."""
    global _compiled
    with _compile_lock:
        if _compiled is None:
            _compiled = compile_idl(NAMING_IDL)
        return _compiled


def naming_service_ior(host: str = NAMING_HOST, service: str = "giop") -> IOR:
    """The well-known IOR of the naming service (corbaloc-style bootstrap)."""
    return IOR(
        type_id=repository_id("cos::NamingService"),
        address=f"{host}/{service}",
        object_key=make_object_key(NAMING_POA, NAMING_OBJECT_ID),
    )


class NamingService:
    """The servant: a thread-safe name -> stringified-IOR table."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._table: dict[str, str] = {}

    def bind(self, name: str, ior: str) -> None:
        compiled = naming_idl()
        with self._lock:
            if name in self._table:
                raise compiled.exceptions["cos::AlreadyBound"](name=name)
            self._table[name] = ior

    def rebind(self, name: str, ior: str) -> None:
        with self._lock:
            self._table[name] = ior

    def resolve(self, name: str) -> str:
        with self._lock:
            ior = self._table.get(name)
        if ior is None:
            raise naming_idl().exceptions["cos::NotFound"](name=name)
        return ior

    def unbind(self, name: str) -> None:
        with self._lock:
            if name not in self._table:
                raise naming_idl().exceptions["cos::NotFound"](name=name)
            del self._table[name]

    def list_names(self, prefix: str) -> list[str]:
        with self._lock:
            return sorted(name for name in self._table if name.startswith(prefix))


def start_naming_service(orb: "Orb") -> NamingService:
    """Activate a :class:`NamingService` at the well-known location.

    The ORB should live on the ``NAMING_HOST`` host (or whatever
    ``naming_host`` the client ORBs were configured with).
    """
    servant = NamingService()
    poa = orb.create_poa(NAMING_POA)
    poa.activate_object(
        NAMING_OBJECT_ID, servant, interface=naming_idl().interface("cos::NamingService")
    )
    return servant


class NamingClient:
    """Typed client wrapper over the naming service reference."""

    def __init__(self, ref: "ObjectRef"):
        self._ref = ref

    def bind(self, name: str, ior: str) -> None:
        self._ref.invoke_op("bind", [name, ior])

    def rebind(self, name: str, ior: str) -> None:
        self._ref.invoke_op("rebind", [name, ior])

    def resolve(self, name: str) -> str:
        return self._ref.invoke_op("resolve", [name])

    def unbind(self, name: str) -> None:
        self._ref.invoke_op("unbind", [name])

    def list_names(self, prefix: str = "") -> list[str]:
        return list(self._ref.invoke_op("list_names", [prefix]))


def naming_client(orb: "Orb") -> NamingClient:
    """Build a :class:`NamingClient` from an ORB's initial references."""
    return NamingClient(orb.resolve_initial_references("NameService"))
