#!/usr/bin/env python
"""Layering lint: make the paper's portability claim machine-checked.

The QoS layer must see only the abstract request and the Cactus QoS
interface — so the generic layers may never import a platform package.
This script AST-scans ``src/repro`` and fails (exit 1) on violations of:

- ``repro.qos`` and ``repro.cactus`` (the generic service components) must
  not import ``repro.orb``, ``repro.rmi``, ``repro.http``, or
  ``repro.core.adapters``;
- the invocation kernel (``repro.core.platform``) and the other
  platform-independent core modules (request/interfaces/stub/skeleton/
  client/server/events) must not import platform packages either — only
  the adapters and the deployment façade may;
- the routing layer (``repro.core.routing``) is below every adapter: it
  must not import platform packages, so the same consistent-hash views
  serve CORBA, RMI, and HTTP without wire or naming changes.

Usage::

    python tools/check_layering.py [--root src]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

PLATFORM_PACKAGES = (
    "repro.orb",
    "repro.rmi",
    "repro.http",
    "repro.core.adapters",
)

# module-prefix -> packages it must never import
CONTRACTS: dict[str, tuple[str, ...]] = {
    "repro.qos": PLATFORM_PACKAGES,
    "repro.cactus": PLATFORM_PACKAGES,
    "repro.core.platform": PLATFORM_PACKAGES,
    "repro.core.request": PLATFORM_PACKAGES,
    "repro.core.interfaces": PLATFORM_PACKAGES,
    "repro.core.events": PLATFORM_PACKAGES,
    "repro.core.stub": PLATFORM_PACKAGES,
    "repro.core.skeleton": PLATFORM_PACKAGES,
    "repro.core.client": PLATFORM_PACKAGES,
    "repro.core.server": PLATFORM_PACKAGES,
    "repro.core.routing": PLATFORM_PACKAGES,
}


def module_name(path: Path, root: Path) -> str:
    relative = path.relative_to(root).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def imported_modules(
    tree: ast.AST, module: str, is_package: bool
) -> list[tuple[int, str]]:
    """Absolute module names imported anywhere in the file (with line)."""
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            found.extend((node.lineno, alias.name) for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # resolve explicit relative imports
                parts = module.split(".")
                # level 1 from a package refers to the package itself;
                # from a plain module it refers to the containing package.
                drop = node.level - 1 if is_package else node.level
                base = parts[: len(parts) - drop] if drop else parts
                name = ".".join(base + ([node.module] if node.module else []))
                found.append((node.lineno, name))
            else:
                found.append((node.lineno, node.module or ""))
    return found


def banned_for(module: str) -> tuple[str, ...]:
    for prefix, banned in CONTRACTS.items():
        if module == prefix or module.startswith(prefix + "."):
            return banned
    return ()


def check(root: Path) -> list[str]:
    violations: list[str] = []
    for path in sorted(root.rglob("*.py")):
        module = module_name(path, root)
        banned = banned_for(module)
        if not banned:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        is_package = path.name == "__init__.py"
        for lineno, imported in imported_modules(tree, module, is_package):
            for target in banned:
                if imported == target or imported.startswith(target + "."):
                    violations.append(
                        f"{path}:{lineno}: {module} imports {imported} "
                        f"(platform package {target} is banned in this layer)"
                    )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent / "src"),
        help="source root containing the repro package",
    )
    options = parser.parse_args(argv)
    violations = check(Path(options.root))
    for violation in violations:
        print(violation)
    if violations:
        print(f"FAIL: {len(violations)} layering violation(s)")
        return 1
    print("layering OK: generic layers import no platform packages")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
