#!/usr/bin/env python3
"""Replicated auction house: why total order is a correctness property.

``place_bid`` outcomes depend on execution order (each bid must beat the
current leader), so three actively-replicated auction servers processing
concurrent bids in different orders would disagree about the winner.  With
CQoS this is one configuration line: TotalOrder on the servers, ActiveRep
on the bidders — and the replicas provably agree, even while one of them
crashes and the sequencer fails over.

Run:  python examples/auction_house.py
"""

import threading
import time

from repro import CqosDeployment, InMemoryNetwork
from repro.apps.auction import AuctionHouse, auction_compiled, auction_interface
from repro.core.request import Request
from repro.qos import ActiveRep, FirstSuccess, TotalOrder


def main() -> None:
    deployment = CqosDeployment(
        InMemoryNetwork(), platform="rmi", compiled=auction_compiled(),
        request_timeout=30.0,
    )
    try:
        skeletons = deployment.add_replicas(
            "house",
            AuctionHouse,
            auction_interface(),
            replicas=3,
            server_micro_protocols=lambda: [TotalOrder(order_timeout=0.3)],
        )
        admin = deployment.client_stub(
            "house", auction_interface(),
            client_micro_protocols=lambda: [ActiveRep(), FirstSuccess()],
        )
        admin.open_auction("the-bridge", 100.0)
        print("auction open: 'the-bridge', reserve 100.0")

        accepted = {}
        rejected = {}

        def bidder(name: str, start: float, step: float, count: int) -> None:
            stub = deployment.client_stub(
                "house", auction_interface(), client_id=name,
                client_micro_protocols=lambda: [ActiveRep(), FirstSuccess()],
            )
            accepted[name], rejected[name] = 0, 0
            for i in range(count):
                try:
                    stub.place_bid("the-bridge", name, start + i * step)
                    accepted[name] += 1
                except Exception:
                    rejected[name] += 1  # outbid in the meantime

        threads = [
            threading.Thread(target=bidder, args=("alice", 100.0, 7.0, 12)),
            threading.Thread(target=bidder, args=("bob", 103.0, 6.5, 12)),
            threading.Thread(target=bidder, args=("carol", 101.0, 8.0, 12)),
        ]
        for t in threads:
            t.start()
        # Crash a backup replica mid-bidding-war.
        time.sleep(0.05)
        deployment.crash_replica("house", 3)
        print("!! replica 3 crashed mid-auction")
        for t in threads:
            t.join()

        for name in ("alice", "bob", "carol"):
            print(f"  {name}: {accepted[name]} accepted, {rejected[name]} outbid")

        winner = admin.close_auction("the-bridge")
        print(f"auction closed; winner: {winner}")

        # The surviving replicas must agree on every accepted bid.
        def probe(skeleton, operation, *args):
            return skeleton._platform.invoke_servant(
                Request("house", operation, list(args))
            )

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            histories = [
                probe(s, "bid_history", "the-bridge") for s in skeletons[:2]
            ]
            if histories[0] == histories[1]:
                break
            time.sleep(0.05)
        print(f"replica histories identical: {histories[0] == histories[1]} "
              f"({len(histories[0])} accepted bids)")
        leaders = [probe(s, "leader", "the-bridge") for s in skeletons[:2]]
        print(f"replica leaders identical: {leaders[0] == leaders[1]} -> {leaders[0]}")
    finally:
        deployment.close()
    print("Order-sensitive workload, consistent replicas, mid-run crash survived. Done.")


if __name__ == "__main__":
    main()
