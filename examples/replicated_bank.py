#!/usr/bin/env python3
"""Fault tolerance: a bank account that survives server crashes.

The paper's financial-services motivation: replicate the account over
three servers and keep answering through crashes — with three different
replication styles, each a pure configuration change:

1. passive replication (primary + failover),
2. active replication + majority voting,
3. active replication + total order (consistent histories under
   concurrent writers).

Run:  python examples/replicated_bank.py
"""

import threading

from repro import CqosDeployment, InMemoryNetwork
from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.core.request import Request
from repro.qos import (
    ActiveRep,
    MajorityVote,
    PassiveRep,
    PassiveRepServer,
    TotalOrder,
)


def passive_replication(platform: str) -> None:
    print(f"\n--- Passive replication with failover ({platform}) ---")
    deployment = CqosDeployment(
        InMemoryNetwork(), platform=platform, compiled=bank_compiled()
    )
    try:
        deployment.add_replicas(
            "acct", BankAccount, bank_interface(), replicas=3,
            server_micro_protocols=lambda: [PassiveRepServer()],
        )
        stub = deployment.client_stub(
            "acct", bank_interface(), client_micro_protocols=lambda: [PassiveRep()]
        )
        stub.set_balance(500.0)
        print(f"  balance (primary replica 1): {stub.get_balance()}")
        deployment.crash_replica("acct", 1)
        print("  !! replica 1 crashed")
        print(f"  balance (failover to replica 2): {stub.get_balance()}")
        stub.deposit(50.0)
        deployment.crash_replica("acct", 2)
        print("  !! replica 2 crashed")
        print(f"  balance (failover to replica 3): {stub.get_balance()}")
    finally:
        deployment.close()


def active_with_voting(platform: str) -> None:
    print(f"\n--- Active replication + majority vote ({platform}) ---")
    deployment = CqosDeployment(
        InMemoryNetwork(), platform=platform, compiled=bank_compiled()
    )
    try:
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)
        stub = deployment.client_stub(
            "acct", bank_interface(),
            client_micro_protocols=lambda: [ActiveRep(), MajorityVote()],
        )
        stub.set_balance(300.0)
        deployment.crash_replica("acct", 3)
        print("  !! replica 3 crashed")
        print(f"  majority of survivors still answers: {stub.get_balance()}")
    finally:
        deployment.close()


def total_order(platform: str) -> None:
    print(f"\n--- Active replication + total order, concurrent writers ({platform}) ---")
    deployment = CqosDeployment(
        InMemoryNetwork(), platform=platform, compiled=bank_compiled()
    )
    try:
        skeletons = deployment.add_replicas(
            "acct", BankAccount, bank_interface(), replicas=3,
            server_micro_protocols=lambda: [TotalOrder()],
        )

        def writer(seed: int) -> None:
            stub = deployment.client_stub(
                "acct", bank_interface(),
                client_micro_protocols=lambda: [ActiveRep()],
            )
            for i in range(5):
                stub.set_balance(float(seed * 100 + i))

        threads = [threading.Thread(target=writer, args=(s,)) for s in (1, 2, 3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        import time

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            balances = [
                s._platform.invoke_servant(Request("acct", "get_balance", []))
                for s in skeletons
            ]
            if len(set(balances)) == 1:
                break
            time.sleep(0.05)
        print(f"  15 concurrent non-commutative writes; replica balances: {balances}")
        print(f"  all replicas agree: {len(set(balances)) == 1}")
    finally:
        deployment.close()


def main() -> None:
    for platform in ("corba", "rmi"):
        passive_replication(platform)
        active_with_voting(platform)
        total_order(platform)
    print("\nThree fault-tolerance styles, zero application changes. Done.")


if __name__ == "__main__":
    main()
