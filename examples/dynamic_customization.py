#!/usr/bin/env python3
"""Dynamic customization: configurations loaded at run time (rBoot/rControl).

The paper's section 2.3.3: a client whose composite protocol starts only
the generic bootstrap micro-protocol and downloads its real configuration —
here from an external configuration service holding per-[user, service]
policies, one of the three deployment options the paper describes.

Also demonstrates run-time reconfiguration: rControl loading an additional
micro-protocol into a live composite.

Run:  python examples/dynamic_customization.py
"""

from repro import CqosDeployment, InMemoryNetwork
from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.cactus.config import MicroProtocolSpec
from repro.cactus.dynamic import ConfigurationService, RBoot


def main() -> None:
    network = InMemoryNetwork()
    deployment = CqosDeployment(network, platform="rmi", compiled=bank_compiled())
    try:
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)

        # An external configuration service defines QoS per (user, service):
        # the premium user gets replication with voting, the trial user a
        # bare pipeline.  No client ships configuration code.
        service = ConfigurationService(network)
        try:
            service.define(
                "premium-user", "acct",
                [MicroProtocolSpec("ActiveRep"), MicroProtocolSpec("MajorityVote")],
            )
            service.define("trial-user", "acct", [])

            for user in ("premium-user", "trial-user"):
                source = ConfigurationService.source(
                    network, f"host-of-{user}", "config-service", user, "acct"
                )
                stub = deployment.client_stub(
                    "acct", bank_interface(), client_id=user,
                    client_micro_protocols=lambda src=source: [RBoot(src)],
                )
                client = stub.cactus_client
                loaded = [
                    name for name in client.micro_protocol_names()
                    if name not in ("rBoot", "rControl", "ClientBase")
                ]
                stub.set_balance(100.0)
                print(f"{user}: dynamically loaded {loaded or ['<nothing>']}, "
                      f"balance={stub.get_balance()}")

            # Run-time reconfiguration: load a failure detector into the
            # premium client's live composite through rControl.
            source = ConfigurationService.source(
                network, "host-late", "config-service", "premium-user", "acct"
            )
            stub = deployment.client_stub(
                "acct", bank_interface(), client_id="premium-user",
                client_micro_protocols=lambda: [RBoot(source)],
            )
            control = stub.cactus_client.micro_protocol("rControl")
            control.load([MicroProtocolSpec("FailureDetector", {"period": 0.5})])
            print(f"after run-time load: {stub.cactus_client.micro_protocol_names()}")
            assert stub.get_balance() == 100.0
        finally:
            service.close()
    finally:
        deployment.close()
    print("Configurations chosen per user at run time, not compile time. Done.")


if __name__ == "__main__":
    main()
