#!/usr/bin/env python3
"""Security + timeliness: a trading desk with confidential, prioritized orders.

The paper's second motivating domain: an application needing *combinations*
of attributes.  The account server is configured with DES confidentiality,
signature-based integrity, per-operation access control, and TimedSched
service differentiation — all at once, all transparently to this client
code.

Run:  python examples/secure_trading.py
"""

import threading
import time

from repro import CqosDeployment, InMemoryNetwork
from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.qos import (
    AccessControl,
    DesPrivacy,
    DesPrivacyServer,
    SignedIntegrity,
    SignedIntegrityServer,
    TimedSched,
)
from repro.qos.timeliness import HIGH_PRIORITY, LOW_PRIORITY

DES_KEY = "1f2e3d4c5b6a7988"
MAC_KEY = "99aabbccddeeff00"


def priority_policy(request):
    """Market-maker clients get priority over reporting batch jobs."""
    return HIGH_PRIORITY if request.client_id.startswith("mm-") else LOW_PRIORITY


def client_security():
    return [DesPrivacy(key_hex=DES_KEY), SignedIntegrity(key_hex=MAC_KEY)]


def server_protocols():
    return [
        DesPrivacyServer(key_hex=DES_KEY),
        SignedIntegrityServer(key_hex=MAC_KEY),
        AccessControl(
            acl={"set_balance": ["mm-goldman"], "withdraw": ["mm-goldman", "mm-citadel"]},
            default_allow=True,
        ),
        TimedSched(period=0.05, high_rate_threshold=2),
    ]


def main() -> None:
    deployment = CqosDeployment(
        InMemoryNetwork(), platform="corba", compiled=bank_compiled()
    )
    try:
        deployment.add_replicas(
            "desk",
            lambda: BankAccount(owner="trading-desk", balance=1_000_000.0, work_loops=5000),
            bank_interface(),
            server_micro_protocols=server_protocols,
            priority_policy=priority_policy,
        )

        # --- confidentiality + integrity + access control ----------------
        goldman = deployment.client_stub(
            "desk", bank_interface(), client_id="mm-goldman",
            client_micro_protocols=client_security,
        )
        citadel = deployment.client_stub(
            "desk", bank_interface(), client_id="mm-citadel",
            client_micro_protocols=client_security,
        )
        print("goldman funds the desk (encrypted + signed on the wire):")
        goldman.set_balance(2_000_000.0)
        print(f"  desk balance: {goldman.get_balance():,.0f}")

        print("citadel may withdraw but not set_balance:")
        print(f"  withdraw(500k) -> {citadel.withdraw(500_000.0):,.0f}")
        try:
            citadel.set_balance(0.0)
        except Exception as exc:
            print(f"  set_balance correctly denied: {exc}")

        unsigned = deployment.client_stub(
            "desk", bank_interface(), client_id="mallory",
            client_micro_protocols=lambda: [DesPrivacy(key_hex=DES_KEY)],  # no signature
        )
        try:
            unsigned.withdraw(1.0)
        except Exception as exc:
            print(f"  unsigned request correctly rejected: {type(exc).__name__}")

        # --- service differentiation under load ---------------------------
        print("\nmixed priority load (market makers vs batch reporting):")
        latencies: dict[str, float] = {}

        def run_client(name: str, count: int) -> None:
            stub = deployment.client_stub(
                "desk", bank_interface(), client_id=name,
                client_micro_protocols=client_security,
            )
            samples = []
            for _ in range(count):
                start = time.perf_counter()
                stub.get_balance()
                samples.append(time.perf_counter() - start)
            latencies[name] = sum(samples) / len(samples) * 1000

        threads = [
            threading.Thread(target=run_client, args=("mm-goldman", 30)),
            threading.Thread(target=run_client, args=("mm-citadel", 30)),
            threading.Thread(target=run_client, args=("batch-eod-report", 30)),
            threading.Thread(target=run_client, args=("batch-audit", 30)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        high = (latencies["mm-goldman"] + latencies["mm-citadel"]) / 2
        low = (latencies["batch-eod-report"] + latencies["batch-audit"]) / 2
        print(f"  market makers (high priority): {high:6.2f} ms avg")
        print(f"  batch jobs    (low priority):  {low:6.2f} ms avg")
        print(f"  differentiation ratio: {low / high:.2f}x")
    finally:
        deployment.close()
    print("\nFour QoS attributes composed on one object. Done.")


if __name__ == "__main__":
    main()
