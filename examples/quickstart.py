#!/usr/bin/env python3
"""Quickstart: transparent CQoS interception on the bank application.

Shows the smallest end-to-end deployment — one intercepted server replica,
one client — on both middleware substrates, and demonstrates the headline
property of the paper: the client code is *identical* with and without
CQoS, and identical across CORBA and RMI.

Run:  python examples/quickstart.py
"""

from repro import CqosDeployment, InMemoryNetwork
from repro.apps.bank import BankAccount, bank_compiled, bank_interface


def exercise(stub, label: str) -> None:
    """The application code: it cannot tell what is underneath."""
    stub.set_balance(100.0)
    stub.deposit(25.0)
    balance = stub.withdraw(30.0)
    print(f"  [{label}] balance after set(100) + deposit(25) - withdraw(30): {balance}")
    try:
        stub.withdraw(10_000.0)
    except Exception as exc:  # the IDL-declared InsufficientFunds
        print(f"  [{label}] overdraft correctly rejected: {type(exc).__name__}: {exc}")


def main() -> None:
    # Three platforms, including the HTTP one the paper only sketches
    # ("it would be feasible to intercept HTTP requests and replies").
    for platform in ("corba", "rmi", "http"):
        print(f"\n=== {platform.upper()} substrate ===")
        network = InMemoryNetwork()
        deployment = CqosDeployment(network, platform=platform, compiled=bank_compiled())
        try:
            # Server side: one CQoS-intercepted replica.  The CQoS skeleton
            # registers in place of the servant; the Cactus server runs the
            # base micro-protocols only (no QoS attributes yet).
            deployment.add_replicas("account", BankAccount, bank_interface())

            # Client side: the CQoS stub has the same application interface
            # as the platform-generated stub it replaces.
            stub = deployment.client_stub("account", bank_interface())
            exercise(stub, f"{platform}/CQoS")

            # The very same application code against the raw platform:
            deployment.deploy_plain_replica("plain", BankAccount(), bank_interface())
            plain = deployment.plain_stub("plain", bank_interface())
            exercise(plain, f"{platform}/original")
        finally:
            deployment.close()
    print("\nSame client code, three platforms, interception transparent. Done.")


if __name__ == "__main__":
    main()
