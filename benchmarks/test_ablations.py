"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's tables; they isolate *why* the tables look the way
they do:

- ``dii_vs_direct`` — the CORBA CQoS stub's DII conversion (NVList +
  TypeCodes) vs a direct typed invocation on the same reference: the
  component the paper blames for the larger CORBA-side overhead.
- ``transport`` — identical CQoS deployment over the in-memory network vs
  real loopback TCP: how much of a call is transport substrate.
- ``latency_sensitivity`` — the message-count-dominated configuration
  (Active+Total) with zero vs LAN-like injected latency: confirms Table 2's
  replication rows are message-bound, not CPU-bound.
"""

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.core.adapters.corba import CorbaClientPlatform
from repro.core.service import CqosDeployment
from repro.net.memory import InMemoryNetwork
from repro.net.tcp import TcpNetwork
from repro.qos import ActiveRep, TotalOrder

from conftest import BENCH_OPTIONS, LAN_LATENCY


@pytest.mark.parametrize("mode", ["dii", "direct"])
def test_ablation_dii_vs_direct(benchmark, mode):
    network = InMemoryNetwork(latency=LAN_LATENCY, spin=True)
    deployment = CqosDeployment(network, "corba", bank_compiled(), request_timeout=30.0)
    try:
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())
        platform: CorbaClientPlatform = stub._platform
        platform._use_dii = mode == "dii"

        def pair():
            stub.set_balance(1.0)
            stub.get_balance()

        pair()
        benchmark.pedantic(pair, **BENCH_OPTIONS)
        benchmark.extra_info["ablation"] = f"dii_vs_direct:{mode}"
    finally:
        deployment.close()


@pytest.mark.parametrize("transport", ["memory", "tcp"])
def test_ablation_transport(benchmark, bench_platform, transport):
    network = InMemoryNetwork() if transport == "memory" else TcpNetwork()
    deployment = CqosDeployment(
        network, bench_platform, bank_compiled(), request_timeout=30.0
    )
    try:
        deployment.add_replicas("acct", BankAccount, bank_interface())
        stub = deployment.client_stub("acct", bank_interface())

        def pair():
            stub.set_balance(1.0)
            stub.get_balance()

        pair()
        benchmark.pedantic(pair, **BENCH_OPTIONS)
        benchmark.extra_info["ablation"] = f"transport:{transport}"
    finally:
        deployment.close()


@pytest.mark.parametrize("latency_us", [0, 50, 200])
def test_ablation_latency_sensitivity(benchmark, latency_us):
    """Active+Total on CORBA: response time should scale with latency much
    faster than the non-replicated base config would (more messages)."""
    network = InMemoryNetwork(latency=latency_us * 1e-6, spin=True)
    deployment = CqosDeployment(network, "corba", bank_compiled(), request_timeout=30.0)
    try:
        deployment.add_replicas(
            "acct",
            BankAccount,
            bank_interface(),
            replicas=3,
            server_micro_protocols=lambda: [TotalOrder()],
        )
        stub = deployment.client_stub(
            "acct", bank_interface(), client_micro_protocols=lambda: [ActiveRep()]
        )

        def pair():
            stub.set_balance(1.0)
            stub.get_balance()

        pair()
        benchmark.pedantic(pair, rounds=20, iterations=5, warmup_rounds=2)
        benchmark.extra_info["ablation"] = f"latency:{latency_us}us"
    finally:
        deployment.close()
