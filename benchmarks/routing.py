"""Sharded object-space routing benchmark (PR 8).

Three measurements, all written to ``BENCH_PR8.json``:

1. **Route micro-benchmark** — the per-lookup cost of resolving one object
   id against a :class:`~repro.core.routing.router.ShardRouter` view
   (``route()`` + full ``assignments()`` ring walk) at 10 / 100 / 1000
   objects, under seeded zipfian access (:mod:`benchmarks.workloads`),
   against the **prefix-scan baseline** the router replaced: counting an
   object's replicas by enumerating the whole bootstrap name table.  The
   view answers from one shared immutable snapshot, so its cost must stay
   flat as the object space grows while the prefix scan grows linearly
   with the name-table size.

2. **End-to-end overhead** — the same deployment (one object, three
   replicas, in-memory network) invoked through an unsharded
   :class:`~repro.core.service.CqosDeployment` and through a
   :class:`~repro.core.shardspace.ShardSpace`; the sharded path adds the
   view-version compare, the view lease, and the piggyback stamp to every
   invocation.  Cells are interleaved best-of-``repeats``.

3. **Live rebalance** — one closed-loop client deposits into a zipfian
   mix of objects while ``add_group`` grows the fleet mid-run.  Reported:
   p99/max per-call latency across the handoff and the rebalance wall
   time.  Exactness check: every issued deposit lands exactly once (final
   balances equal the issue counts — a dropped request would undershoot,
   a double-executed one overshoot).

CI gates (exit 1 on violation):

- flatness — route+assignments mean cost at 1000 objects must be within
  ``FLATNESS_LIMIT``× its cost at 10 objects;
- overhead — sharded end-to-end mean per-call latency must be within
  ``OVERHEAD_LIMIT`` (10%) of the unsharded baseline at 3 replicas;
- zero drop — the rebalance run must finish with zero errors and exact
  final balances.

Usage::

    PYTHONPATH=src python benchmarks/routing.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from workloads import zipf_sequence  # noqa: E402

from repro.apps.bank import BankAccount, bank_compiled, bank_interface  # noqa: E402
from repro.core.routing import (  # noqa: E402
    DirectoryView,
    Placement,
    ServerGroup,
    ShardRouter,
)
from repro.core.service import CqosDeployment  # noqa: E402
from repro.net.memory import InMemoryNetwork  # noqa: E402

#: Route cost at 1000 objects may be at most this multiple of the cost at
#: 10 objects ("flat to 1000+ objects"; the real ratio is ~1, the limit
#: leaves room for shared-runner noise).
FLATNESS_LIMIT = 3.0
#: Sharded end-to-end per-call latency may exceed unsharded by at most this.
OVERHEAD_LIMIT = 0.10
#: The platform the end-to-end gates run on (the kernel path is shared; the
#: other adapters differ only in conversion cost, which both cells pay).
GATE_PLATFORM = "rmi"

ZIPF_SKEW = 1.1


# -- 1. route micro-benchmark -------------------------------------------------


def _micro_view(n_objects: int) -> DirectoryView:
    """Four groups of two members, three-way spread placement — the ring
    shape the end-to-end gate uses, at micro-benchmark scale."""
    groups = tuple(
        ServerGroup(f"g{i}", (2 * i + 1, 2 * i + 2)) for i in range(4)
    )
    return DirectoryView(
        version=1,
        groups=groups,
        default_placement=Placement(replication_factor=3, policy="spread"),
    )


def _prefix_count(table: list[str], prefix: str) -> int:
    """The replaced discovery path: enumerate the whole bootstrap name
    table and count entries under the object's prefix (what the unsharded
    ``ReplicaDirectory.count()`` does via ``list_names``)."""
    return sum(1 for name in table if name.startswith(prefix))


def run_route_micro(lookups: int) -> dict:
    rows = []
    for n_objects in (10, 100, 1000):
        object_ids = [f"obj-{k}" for k in range(n_objects)]
        router = ShardRouter(_micro_view(n_objects))
        view = router.view()
        table = [
            f"{oid}/replica-{logical}"
            for oid in object_ids
            for logical, _ in view.assignments(oid)
        ]
        sequence = [
            object_ids[rank]
            for rank in zipf_sequence(n_objects, lookups, skew=ZIPF_SKEW, seed=8)
        ]

        t0 = time.perf_counter()
        for oid in sequence:
            router.route(oid)
            view.assignments(oid)
        routed_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for oid in sequence:
            _prefix_count(table, oid + "/")
        prefix_s = time.perf_counter() - t0

        rows.append(
            {
                "objects": n_objects,
                "name_table_entries": len(table),
                "lookups": lookups,
                "routed_us": round(routed_s / lookups * 1e6, 3),
                "prefix_scan_us": round(prefix_s / lookups * 1e6, 3),
                "speedup": round(prefix_s / routed_s, 2) if routed_s > 0 else None,
            }
        )
        print(
            f"route micro {n_objects:>5} objects: "
            f"routed {rows[-1]['routed_us']:>8} us  "
            f"prefix-scan {rows[-1]['prefix_scan_us']:>8} us  "
            f"x{rows[-1]['speedup']}"
        )
    flatness = rows[-1]["routed_us"] / rows[0]["routed_us"]
    return {"results": rows, "flatness_1000_vs_10": round(flatness, 2)}


# -- 2. end-to-end overhead ---------------------------------------------------


def _timed_calls(callable_, calls: int) -> list[float]:
    for _ in range(min(20, calls)):  # warm binds, connections, caches
        callable_()
    samples = []
    for _ in range(calls):
        t0 = time.perf_counter()
        callable_()
        samples.append(time.perf_counter() - t0)
    return samples


def _unsharded_cell(platform: str, calls: int) -> list[float]:
    deployment = CqosDeployment(
        InMemoryNetwork(), platform=platform, compiled=bank_compiled(),
        request_timeout=30.0,
    )
    try:
        deployment.add_replicas("acct", BankAccount, bank_interface(), replicas=3)
        stub = deployment.client_stub("acct", bank_interface())
        return _timed_calls(stub.get_balance, calls)
    finally:
        deployment.close()


def _sharded_cell(platform: str, calls: int) -> list[float]:
    deployment = CqosDeployment(
        InMemoryNetwork(), platform=platform, compiled=bank_compiled(),
        request_timeout=30.0,
    )
    try:
        space = deployment.shard_space({"g1": 1, "g2": 1, "g3": 1})
        space.add_object(
            "acct",
            BankAccount,
            bank_interface(),
            placement=Placement(replication_factor=3, policy="spread"),
        )
        stub = space.client_stub("acct", bank_interface())
        return _timed_calls(stub.get_balance, calls)
    finally:
        deployment.close()


def run_e2e_overhead(platform: str, calls: int, repeats: int) -> dict:
    """Interleaved best-of-``repeats``: unsharded run, sharded run, … so
    machine-load drift hits both cells instead of biasing one."""
    best = {"unsharded": float("inf"), "sharded": float("inf")}
    p50 = dict(best)
    for _ in range(repeats):
        for cell, runner in (("unsharded", _unsharded_cell), ("sharded", _sharded_cell)):
            samples = sorted(runner(platform, calls))
            mean = statistics.fmean(samples)
            if mean < best[cell]:
                best[cell] = mean
                p50[cell] = samples[len(samples) // 2]
    overhead = best["sharded"] / best["unsharded"] - 1.0
    row = {
        "platform": platform,
        "replicas": 3,
        "calls": calls,
        "repeats": repeats,
        "unsharded_mean_us": round(best["unsharded"] * 1e6, 2),
        "sharded_mean_us": round(best["sharded"] * 1e6, 2),
        "unsharded_p50_us": round(p50["unsharded"] * 1e6, 2),
        "sharded_p50_us": round(p50["sharded"] * 1e6, 2),
        "overhead_pct": round(overhead * 100, 2),
    }
    print(
        f"e2e {platform}: unsharded {row['unsharded_mean_us']} us  "
        f"sharded {row['sharded_mean_us']} us  "
        f"overhead {row['overhead_pct']}%"
    )
    return row


# -- 3. live rebalance --------------------------------------------------------


def run_rebalance(platform: str, n_objects: int, calls: int) -> dict:
    """Closed-loop deposits across a zipfian object mix while the fleet
    grows by one group mid-run; proves the zero-drop discipline end to end."""
    deployment = CqosDeployment(
        InMemoryNetwork(), platform=platform, compiled=bank_compiled(),
        request_timeout=30.0,
    )
    try:
        space = deployment.shard_space({"a": 1, "b": 1})
        object_ids = [f"obj-{k}" for k in range(n_objects)]
        for oid in object_ids:
            space.add_object(oid, BankAccount, bank_interface())
        stubs = {
            oid: space.client_stub(oid, bank_interface()) for oid in object_ids
        }
        sequence = [
            object_ids[rank]
            for rank in zipf_sequence(n_objects, calls, skew=ZIPF_SKEW, seed=88)
        ]

        trigger_at = int(calls * 0.4)
        trigger = threading.Event()
        rebalance_s = [0.0]

        def rebalance() -> None:
            trigger.wait(timeout=60.0)
            t0 = time.perf_counter()
            space.add_group("c", 1)
            rebalance_s[0] = time.perf_counter() - t0

        rebalancer = threading.Thread(target=rebalance, daemon=True)
        rebalancer.start()

        issued: dict[str, int] = {oid: 0 for oid in object_ids}
        latencies: list[float] = []
        errors: list[str] = []
        for i, oid in enumerate(sequence):
            if i == trigger_at:
                trigger.set()
            t0 = time.perf_counter()
            try:
                stubs[oid].deposit(1.0)
                issued[oid] += 1
            except Exception as exc:  # noqa: BLE001 - counted, gated below
                errors.append(f"{oid}: {exc!r}")
            latencies.append(time.perf_counter() - t0)
        rebalancer.join(timeout=60.0)

        exact = all(
            stubs[oid].get_balance() == float(count)
            for oid, count in issued.items()
        )
        moved = sum(
            1
            for oid in object_ids
            if space.view().owner_groups(oid) == ("c",)
        )
        latencies.sort()
        row = {
            "platform": platform,
            "objects": n_objects,
            "calls": calls,
            "view_version": space.view().version,
            "objects_moved_to_new_group": moved,
            "rebalance_wall_ms": round(rebalance_s[0] * 1e3, 2),
            "p50_ms": round(latencies[len(latencies) // 2] * 1e3, 3),
            "p99_ms": round(
                latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))] * 1e3,
                3,
            ),
            "max_ms": round(latencies[-1] * 1e3, 3),
            "errors": len(errors),
            "balances_exact": exact,
            "zero_drop": not errors and exact,
        }
        if errors:
            for line in errors[:5]:
                print(f"rebalance error: {line}")
        print(
            f"rebalance {platform}: {n_objects} objects, {calls} calls, "
            f"{moved} moved, wall {row['rebalance_wall_ms']} ms, "
            f"p99 {row['p99_ms']} ms, max {row['max_ms']} ms, "
            f"zero_drop={row['zero_drop']}"
        )
        return row
    finally:
        deployment.close()


# -- driver -------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny iteration counts (CI)"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR8.json"),
        help="output JSON path",
    )
    options = parser.parse_args(argv)

    lookups = 2000 if options.smoke else 20000
    e2e_calls = 150 if options.smoke else 1000
    e2e_repeats = 3 if options.smoke else 5
    reb_objects = 12 if options.smoke else 48
    reb_calls = 400 if options.smoke else 3000

    micro = run_route_micro(lookups)
    e2e = run_e2e_overhead(GATE_PLATFORM, e2e_calls, e2e_repeats)
    rebalance = run_rebalance(GATE_PLATFORM, reb_objects, reb_calls)

    gates = {
        "flatness_limit": FLATNESS_LIMIT,
        "flatness_ok": micro["flatness_1000_vs_10"] <= FLATNESS_LIMIT,
        "overhead_limit_pct": OVERHEAD_LIMIT * 100,
        "overhead_ok": e2e["overhead_pct"] <= OVERHEAD_LIMIT * 100,
        "zero_drop_ok": rebalance["zero_drop"],
    }
    report = {
        "bench": "routing-pr8",
        "smoke": options.smoke,
        "route_micro": micro,
        "e2e_overhead": e2e,
        "rebalance": rebalance,
        "gates": gates,
    }
    Path(options.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {options.out}")
    print(
        f"flatness 1000v10: {micro['flatness_1000_vs_10']}x "
        f"(limit {FLATNESS_LIMIT}x)  overhead: {e2e['overhead_pct']}% "
        f"(limit {OVERHEAD_LIMIT * 100}%)  zero-drop: {rebalance['zero_drop']}"
    )

    failed = [name for name, ok in gates.items() if name.endswith("_ok") and not ok]
    if failed:
        print(f"FAIL: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
