"""Event-dispatch microbenchmark: compiled chain vs. reference executor (PR 5).

Measures the per-raise cost of a Cactus composite's event dispatch as a
function of the number of bound micro-protocol handlers (1/2/4/8 — the
paper's Table 2 "composition depth" axis), for both executors:

- ``reference`` — the interpretation loop: per-raise lock, binding-list
  copy, fresh Occurrence allocation, per-handler causality-stack push/pop;
- ``compiled`` — the fast path: copy-on-write versioned snapshot read with
  no lock and no copy, pre-compiled flat handler chain, one causality-stack
  entry per raise, and a refcount-gated Occurrence freelist.

Handlers mirror real micro-protocol shapes — half bind with a static
argument (the ActiveRep per-replica pattern), half without — but their
bodies are a single occurrence-attribute touch, so the numbers measure
dispatch overhead, not handler work.

An end-to-end section (optional in ``--smoke``) runs a Table 2 analogue —
an in-memory active-replication deployment (ActiveRep + MajorityVote,
3 replicas) doing set/get pairs — with compiled dispatch on and off, to
confirm the composed-request path holds or improves.

Exit status is non-zero if the compiled executor fails to beat the
reference executor at every composition depth — the CI smoke gate.
Results go to ``BENCH_PR5.json``.

Usage::

    PYTHONPATH=src python benchmarks/dispatch.py [--smoke] [--e2e]
        [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cactus.composite import CompositeProtocol  # noqa: E402

#: Composition depths: bound handlers per event (micro-protocols composed).
DEPTHS = (1, 2, 4, 8)


def build_composite(handlers: int, compiled: bool) -> CompositeProtocol:
    composite = CompositeProtocol(
        f"bench-{'c' if compiled else 'r'}-{handlers}", compiled_dispatch=compiled
    )
    def plain(occurrence):
        occurrence.args

    def with_static(occurrence, replica):
        occurrence.args

    for index in range(handlers):
        if index % 2:
            composite.bind("request", with_static, order=10 * index, static_args=(index,))
        else:
            composite.bind("request", plain, order=10 * index)
    return composite


def time_raises(composite: CompositeProtocol, raises: int, repeats: int) -> list[float]:
    """Per-raise cost in microseconds, best-of-``repeats`` sampling."""
    samples = []
    raise_event = composite.raise_event
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(raises):
            raise_event("request", 7)
        elapsed = time.perf_counter() - start
        samples.append(elapsed / raises * 1e6)
    return samples


def time_executor(composite: CompositeProtocol, raises: int, repeats: int) -> list[float]:
    """Executor-only per-raise cost (µs): calls the event's blocking
    executor directly, excluding the shared ``raise_event`` wrapper —
    this is the dispatch cost the compiled chain replaces."""
    samples = []
    execute = composite.event("request")._raise_blocking
    args = (7,)
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(raises):
            execute(args, None)
        elapsed = time.perf_counter() - start
        samples.append(elapsed / raises * 1e6)
    return samples


def run_micro(raises: int, repeats: int) -> dict:
    results = {}
    for depth in DEPTHS:
        entry = {}
        for mode, compiled in (("reference", False), ("compiled", True)):
            composite = build_composite(depth, compiled)
            try:
                time_raises(composite, max(raises // 10, 100), 1)  # warmup
                samples = time_raises(composite, raises, repeats)
                executor_samples = time_executor(composite, raises, repeats)
            finally:
                composite.runtime.shutdown()
            entry[mode] = {
                "per_raise_us": min(samples),
                "per_raise_us_median": statistics.median(samples),
                "executor_us": min(executor_samples),
            }
        entry["speedup"] = entry["reference"]["per_raise_us"] / entry["compiled"]["per_raise_us"]
        entry["executor_speedup"] = (
            entry["reference"]["executor_us"] / entry["compiled"]["executor_us"]
        )
        results[str(depth)] = entry
    return results


def run_e2e(pairs: int) -> dict:
    """Table 2 analogue: ActiveRep+Vote set/get pairs, both executors."""
    from repro.apps.bank import BankAccount, bank_compiled, bank_interface
    from repro.core.service import CqosDeployment
    from repro.net.memory import InMemoryNetwork
    from repro.qos import ActiveRep, MajorityVote, TotalOrder

    results = {}
    for mode, compiled in (("reference", False), ("compiled", True)):
        deployment = CqosDeployment(
            InMemoryNetwork(),
            platform="rmi",
            compiled=bank_compiled(),
            compiled_dispatch=compiled,
        )
        try:
            deployment.add_replicas(
                "acct",
                BankAccount,
                bank_interface(),
                replicas=3,
                server_micro_protocols=lambda: [TotalOrder()],
            )
            stub = deployment.client_stub(
                "acct",
                bank_interface(),
                client_micro_protocols=lambda: [ActiveRep(), MajorityVote()],
            )
            for _ in range(max(pairs // 10, 5)):  # warmup
                stub.set_balance(1.0)
                stub.get_balance()
            samples = []
            for _ in range(3):  # median-of-3: pair cost is noisy on a shared host
                start = time.perf_counter()
                for _ in range(pairs):
                    stub.set_balance(2.0)
                    stub.get_balance()
                samples.append(time.perf_counter() - start)
        finally:
            deployment.close()
        results[mode] = {"pair_ms": statistics.median(samples) / pairs * 1e3}
    results["speedup"] = results["reference"]["pair_ms"] / results["compiled"]["pair_ms"]
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="fast CI sizing")
    parser.add_argument("--e2e", action="store_true", help="include the Table 2 analogue")
    parser.add_argument("--out", default="BENCH_PR5.json")
    options = parser.parse_args(argv)

    raises = 20_000 if options.smoke else 100_000
    repeats = 3 if options.smoke else 5

    micro = run_micro(raises, repeats)
    report = {
        "benchmark": "event-dispatch (compiled chain vs reference executor)",
        "raises_per_sample": raises,
        "samples": repeats,
        "dispatch": micro,
    }
    if options.e2e or not options.smoke:
        report["table2_analogue"] = run_e2e(150 if options.smoke else 600)

    print(
        f"{'depth':>6} {'reference us':>14} {'compiled us':>13} {'speedup':>9} "
        f"{'executor':>9}"
    )
    for depth in DEPTHS:
        entry = micro[str(depth)]
        print(
            f"{depth:>6} {entry['reference']['per_raise_us']:>14.3f} "
            f"{entry['compiled']['per_raise_us']:>13.3f} {entry['speedup']:>8.2f}x "
            f"{entry['executor_speedup']:>8.2f}x"
        )
    if "table2_analogue" in report:
        e2e = report["table2_analogue"]
        print(
            f"table2 analogue (ActiveRep+Vote+Total, 3 replicas): "
            f"reference {e2e['reference']['pair_ms']:.3f} ms/pair, "
            f"compiled {e2e['compiled']['pair_ms']:.3f} ms/pair "
            f"({e2e['speedup']:.2f}x)"
        )

    Path(options.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {options.out}")

    # CI gate: compiled must beat reference at every composition depth.
    failed = [d for d in DEPTHS if micro[str(d)]["speedup"] < 1.0]
    if failed:
        print(f"GATE FAILED: compiled slower than reference at depths {failed}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
