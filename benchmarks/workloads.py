"""Seeded synthetic workload generators shared by the benchmarks (PR 8).

Real object spaces are not accessed uniformly: a few objects take most of
the traffic.  Both the routing benchmark (:mod:`benchmarks.routing`) and
the throughput harness (:mod:`benchmarks.throughput`) draw their key
sequences from here so every run is reproducible (explicit seed, no global
RNG state) and both harnesses stress the same distribution shapes:

- :func:`zipf_sequence` — Zipf(s) over ``n_keys`` ranks via a precomputed
  CDF and :func:`bisect.bisect` (O(log n) per draw, no scipy);
- :func:`hot_key_sequence` — a two-tier hot/cold split: ``hot_fraction``
  of the keys receive ``hot_weight`` of the traffic, uniform within each
  tier — the cache-adversarial "everything hits one shard" shape.

Keys are ranks ``0..n_keys-1`` (rank 0 is the hottest); map them to object
ids or payloads at the call site.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Iterator


def zipf_cdf(n_keys: int, skew: float = 1.1) -> list[float]:
    """The cumulative distribution of Zipf(``skew``) over ``n_keys`` ranks."""
    if n_keys < 1:
        raise ValueError("n_keys must be >= 1")
    weights = [1.0 / (rank ** skew) for rank in range(1, n_keys + 1)]
    total = sum(weights)
    cdf: list[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cdf.append(acc / total)
    return cdf


def zipf_iter(n_keys: int, skew: float = 1.1, seed: int = 0) -> Iterator[int]:
    """An endless seeded stream of Zipf-distributed ranks."""
    cdf = zipf_cdf(n_keys, skew)
    rng = random.Random(seed)
    while True:
        yield bisect.bisect(cdf, rng.random())


def zipf_sequence(
    n_keys: int, count: int, skew: float = 1.1, seed: int = 0
) -> list[int]:
    """``count`` Zipf-distributed ranks in ``0..n_keys-1`` (deterministic)."""
    return list(itertools.islice(zipf_iter(n_keys, skew, seed), count))


def hot_key_sequence(
    n_keys: int,
    count: int,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.9,
    seed: int = 0,
) -> list[int]:
    """``count`` ranks where ``hot_fraction`` of keys get ``hot_weight`` of hits.

    The hot tier is the lowest ranks (consistent with :func:`zipf_sequence`:
    rank 0 is always the hottest key).  With one key the entire stream is
    that key.
    """
    if n_keys < 1:
        raise ValueError("n_keys must be >= 1")
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in (0, 1]")
    if not 0.0 <= hot_weight <= 1.0:
        raise ValueError("hot_weight must be in [0, 1]")
    hot_count = max(1, int(n_keys * hot_fraction))
    rng = random.Random(seed)
    out: list[int] = []
    for _ in range(count):
        if hot_count >= n_keys or rng.random() < hot_weight:
            out.append(rng.randrange(hot_count))
        else:
            out.append(rng.randrange(hot_count, n_keys))
    return out
