#!/usr/bin/env python3
"""Regenerate the paper's Tables 1-3 in their original layout.

Runs every configuration of the evaluation (section 5) and prints rows in
the same shape the paper reports, including the per-component ("ohead") and
cumulative ("cum ohead") overhead columns of Table 1 and the per-priority
columns of Table 3.  Medians over many measured pairs are reported; the
paper used means over 10000 pairs on otherwise idle machines — medians are
the robust equivalent on a shared host.

Run:  python benchmarks/report.py [--pairs N]

The output of a run is recorded in EXPERIMENTS.md next to the paper's
numbers.
"""

from __future__ import annotations

import argparse
import gc
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import (  # noqa: E402
    TABLE1_RUNGS,
    TABLE2_CONFIGS,
    TABLE2_SERVERS,
    TABLE3_CONFIGS,
    TABLE3_SERVERS,
    Table3Load,
    build_table1,
    build_table2,
    build_table3,
)

TABLE1_LABELS = {
    "original": "Original {platform}",
    "cqos_stub": "+ CQoS stub",
    "cqos_skeleton": "+ CQoS skeleton",
    "cactus_server": "+ Cactus server",
    "cactus_client": "+ Cactus client",
}

TABLE2_LABELS = {
    "privacy": "Privacy(DES)",
    "passive": "Passive Rep",
    "active": "Active Rep",
    "active_vote": "+ Vote",
    "active_vote_total": "+ Total",
    "active_total": "Active+Total",
    "active_total_privacy": "+ Privacy",
}

TABLE3_LABELS = {
    "timed": "TimedSched",
    "timed_active": "+ Active Rep",
    "timed_active_vote": "+ Vote",
    "timed_active_vote_total": "+ Total",
    "timed_active_total": "Active+Total",
}


def measure_pairs(pair_fn, pairs: int, warmup: int = 100, stat: str = "median") -> float:
    """Time of one set+get pair in ms: median (Tables 1/2) or mean (Table 3).

    Table 3 uses the mean, like the paper's "average response times" — the
    gating delays land on a minority of requests, which a median would hide.
    """
    for _ in range(warmup):
        pair_fn()
    samples = []
    batch = 10
    for _ in range(max(1, pairs // batch)):
        start = time.perf_counter()
        for _ in range(batch):
            pair_fn()
        samples.append((time.perf_counter() - start) / batch)
    reduce = statistics.mean if stat == "mean" else statistics.median
    return reduce(samples) * 1000


def run_table1(pairs: int) -> None:
    print("\nTable 1: Average response times (in ms)\n")
    header = f"{'Configuration':<22}{'set + get':>10}{'one call':>10}{'ohead':>8}{'cum':>8}"
    for platform in ("corba", "rmi"):
        print(header)
        baseline = None
        previous = None
        for rung in TABLE1_RUNGS:
            deployment, pair = build_table1(platform, rung)
            try:
                pair_ms = measure_pairs(pair, pairs)
            finally:
                deployment.close()
            if baseline is None:
                baseline = pair_ms
                previous = pair_ms
            label = TABLE1_LABELS[rung].format(platform=platform.upper())
            ohead = pair_ms - previous
            cum = pair_ms - baseline
            print(
                f"{label:<22}{pair_ms:>10.3f}{pair_ms / 2:>10.3f}"
                f"{ohead:>8.3f}{cum:>8.3f}"
            )
            previous = pair_ms
        print()


def run_table2(pairs: int) -> None:
    print("\nTable 2: Response times for different configurations (in ms)\n")
    print(f"{'Configuration':<16}{'servers':>8}{'CORBA pair':>12}{'CORBA call':>12}"
          f"{'RMI pair':>10}{'RMI call':>10}")
    for config in TABLE2_CONFIGS:
        row = {}
        for platform in ("corba", "rmi"):
            deployment, pair = build_table2(platform, config)
            try:
                row[platform] = measure_pairs(pair, pairs)
            finally:
                deployment.close()
        print(
            f"{TABLE2_LABELS[config]:<16}{TABLE2_SERVERS[config]:>8}"
            f"{row['corba']:>12.3f}{row['corba'] / 2:>12.3f}"
            f"{row['rmi']:>10.3f}{row['rmi'] / 2:>10.3f}"
        )


def run_table3(pairs: int) -> None:
    print("\nTable 3: Average response times with TimedSched (in ms, one call)\n")
    print(f"{'Configuration':<16}{'servers':>8}{'CORBA high':>12}{'CORBA low':>12}"
          f"{'RMI high':>10}{'RMI low':>10}")
    for config in TABLE3_CONFIGS:
        cells = {}
        for platform in ("corba", "rmi"):
            for priority_class in ("high", "low"):
                deployment, load, pair = build_table3(platform, config, priority_class)
                try:
                    cells[(platform, priority_class)] = (
                        measure_pairs(pair, max(pairs // 4, 40), warmup=20, stat="mean")
                        / 2
                    )
                finally:
                    load.stop()
                    deployment.close()
        print(
            f"{TABLE3_LABELS[config]:<16}{TABLE3_SERVERS[config]:>8}"
            f"{cells[('corba', 'high')]:>12.3f}{cells[('corba', 'low')]:>12.3f}"
            f"{cells[('rmi', 'high')]:>10.3f}{cells[('rmi', 'low')]:>10.3f}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pairs", type=int, default=400,
                        help="measured pairs per configuration (default 400)")
    parser.add_argument("--tables", default="1,2,3",
                        help="comma-separated table numbers to run")
    args = parser.parse_args()
    gc.disable()
    tables = set(args.tables.split(","))
    if "1" in tables:
        run_table1(args.pairs)
    if "2" in tables:
        run_table2(args.pairs)
    if "3" in tables:
        run_table3(args.pairs)


if __name__ == "__main__":
    main()
