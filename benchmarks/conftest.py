"""Shared benchmark machinery for the paper's evaluation (section 5).

The paper measured pairs of ``set_balance``/``get_balance`` calls on a
600 MHz PIII cluster over 1 Gbit Ethernet (Visibroker 4.1 / JDK 1.3).  Here
the cluster is the in-memory network with LAN-like per-message latency
(:data:`LAN_LATENCY`), so configurations that send more messages really pay
for them — the property the paper's Table 2/3 shapes depend on.

Absolute milliseconds are not comparable to 2001 hardware; the shapes are.
EXPERIMENTS.md records both.  ``python benchmarks/report.py`` prints the
three tables in the paper's own layout.
"""

from __future__ import annotations

import threading

import pytest

from repro.apps.bank import BankAccount, bank_compiled, bank_interface
from repro.core.service import CqosDeployment
from repro.net.memory import InMemoryNetwork
from repro.qos import (
    ActiveRep,
    DesPrivacy,
    DesPrivacyServer,
    MajorityVote,
    PassiveRep,
    PassiveRepServer,
    TimedSched,
    TotalOrder,
)
from repro.qos.timeliness import HIGH_PRIORITY, LOW_PRIORITY

#: One-way per-message latency (seconds) modelling the paper's LAN hop.
#: Injected as a deterministic busy-wait; every message a configuration
#: sends costs this much wall-clock on top of its real marshalling and
#: dispatch CPU, so message-heavy configurations (replication, ordering)
#: keep the paper's cost shape.
LAN_LATENCY = 20e-6

#: DES key shared by the privacy configurations.
DES_KEY_HEX = "0123456789abcdef"

#: Servant CPU weight for the contention benchmarks (Table 3).
TABLE3_WORK_LOOPS = 8000

#: Benchmark knobs: keep wall-clock bounded across ~40 configurations.
BENCH_OPTIONS = dict(rounds=30, iterations=10, warmup_rounds=2)


def make_deployment(platform: str) -> CqosDeployment:
    # spin=True: microsecond-accurate latency so the per-component deltas
    # of Table 1 are not buried in time.sleep scheduling jitter.
    network = InMemoryNetwork(latency=LAN_LATENCY, spin=True)
    return CqosDeployment(
        network, platform=platform, compiled=bank_compiled(), request_timeout=30.0
    )


# --- Table 1: the interception overhead ladder ------------------------------

TABLE1_RUNGS = (
    "original",
    "cqos_stub",
    "cqos_skeleton",
    "cactus_server",
    "cactus_client",
)


def build_table1(platform: str, rung: str):
    """Return (deployment, pair_fn) for one ladder rung."""
    deployment = make_deployment(platform)
    iface = bank_interface()
    if rung == "original":
        deployment.deploy_plain_replica("acct", BankAccount(), iface)
        stub = deployment.plain_stub("acct", iface)
    elif rung == "cqos_stub":
        deployment.deploy_plain_replica("acct", BankAccount(), iface)
        stub = deployment.client_stub("acct", iface, with_cactus_client=False)
    elif rung == "cqos_skeleton":
        deployment.add_replicas("acct", BankAccount, iface, server_micro_protocols=None)
        stub = deployment.client_stub("acct", iface, with_cactus_client=False)
    elif rung == "cactus_server":
        deployment.add_replicas("acct", BankAccount, iface)
        stub = deployment.client_stub("acct", iface, with_cactus_client=False)
    elif rung == "cactus_client":
        deployment.add_replicas("acct", BankAccount, iface)
        stub = deployment.client_stub("acct", iface)
    else:  # pragma: no cover - guarded by parametrize
        raise ValueError(rung)

    def pair():
        stub.set_balance(100.0)
        stub.get_balance()

    pair()  # bind + warm caches outside the measurement
    return deployment, pair


# --- Table 2: QoS configurations ------------------------------------------------

TABLE2_CONFIGS = (
    "privacy",          # Privacy(DES), 1 server
    "passive",          # Passive Rep, 3 servers
    "active",           # Active Rep, 3 servers
    "active_vote",      # + Vote
    "active_vote_total",  # + Total
    "active_total",     # Active+Total
    "active_total_privacy",  # + Privacy
)

TABLE2_SERVERS = {
    "privacy": 1,
    "passive": 3,
    "active": 3,
    "active_vote": 3,
    "active_vote_total": 3,
    "active_total": 3,
    "active_total_privacy": 3,
}


def _table2_protocols(config: str):
    """(client_factory, server_factory) for one Table 2 row."""
    key = DES_KEY_HEX
    client = {
        "privacy": lambda: [DesPrivacy(key_hex=key)],
        "passive": lambda: [PassiveRep()],
        "active": lambda: [ActiveRep()],
        "active_vote": lambda: [ActiveRep(), MajorityVote()],
        "active_vote_total": lambda: [ActiveRep(), MajorityVote()],
        "active_total": lambda: [ActiveRep()],
        "active_total_privacy": lambda: [ActiveRep(), DesPrivacy(key_hex=key)],
    }[config]
    server = {
        "privacy": lambda: [DesPrivacyServer(key_hex=key)],
        "passive": lambda: [PassiveRepServer()],
        "active": None,
        "active_vote": None,
        "active_vote_total": lambda: [TotalOrder()],
        "active_total": lambda: [TotalOrder()],
        "active_total_privacy": lambda: [TotalOrder(), DesPrivacyServer(key_hex=key)],
    }[config]
    return client, server


def build_table2(platform: str, config: str):
    """Return (deployment, pair_fn) for one Table 2 configuration."""
    deployment = make_deployment(platform)
    iface = bank_interface()
    client_factory, server_factory = _table2_protocols(config)
    deployment.add_replicas(
        "acct",
        BankAccount,
        iface,
        replicas=TABLE2_SERVERS[config],
        server_micro_protocols=server_factory if server_factory else "with_base",
    )
    stub = deployment.client_stub("acct", iface, client_micro_protocols=client_factory)

    def pair():
        stub.set_balance(100.0)
        stub.get_balance()

    pair()
    return deployment, pair


# --- Table 3: service differentiation ---------------------------------------------

TABLE3_CONFIGS = (
    "timed",              # TimedSched, 1 server
    "timed_active",       # + Active Rep, 3 servers
    "timed_active_vote",  # + Vote
    "timed_active_vote_total",  # + Total
    "timed_active_total",  # Active+Total
)

TABLE3_SERVERS = {
    "timed": 1,
    "timed_active": 3,
    "timed_active_vote": 3,
    "timed_active_vote_total": 3,
    "timed_active_total": 3,
}


def identity_policy(request):
    """The paper's priority assignment: statically by client identity."""
    return HIGH_PRIORITY if request.client_id.startswith("high") else LOW_PRIORITY


def _table3_protocols(config: str):
    client = {
        "timed": lambda: [],
        "timed_active": lambda: [ActiveRep()],
        "timed_active_vote": lambda: [ActiveRep(), MajorityVote()],
        "timed_active_vote_total": lambda: [ActiveRep(), MajorityVote()],
        "timed_active_total": lambda: [ActiveRep()],
    }[config]
    with_total = config in ("timed_active_vote_total", "timed_active_total")

    def server_factory(replica: int):
        # The paper's conflict resolution: the differentiation protocol runs
        # only at the ordering coordinator (replica 1) when TotalOrder is on.
        protocols = []
        if with_total:
            protocols.append(TotalOrder())
            if replica == 1:
                protocols.append(TimedSched(period=0.005, high_rate_threshold=2))
        else:
            protocols.append(TimedSched(period=0.005, high_rate_threshold=2))
        return protocols

    return client, server_factory


class Table3Load:
    """Background mixed-priority load (the paper's designated client mix).

    The paper's load came from *separate machines*; co-locating generator
    and measurement on one core makes a client-thread generator phase-lock
    with the foreground (the GIL suppresses it exactly while the foreground
    measures, emptying the windows it should fill).  So the high-priority
    load is injected as deterministic bursts straight into the coordinator's
    Cactus server from a timer thread — sleep wakeups preempt CPU-bound
    threads, so the bursts land on schedule regardless of foreground
    activity; the requests still traverse the full server pipeline and
    servant.  The burst/gap alternation guarantees both busy and quiet
    TimedSched windows, the regime behind the paper's roughly-2x low/high
    ratio.  Low-priority pressure stays client-based.
    """

    def __init__(
        self,
        deployment,
        client_factory,
        cactus_servers,
        low: int = 2,
        burst_count: int = 8,
        cycle: float = 0.030,
        low_think: float = 0.004,
    ):
        self._stop = threading.Event()
        self._threads = []
        self._extra_threads = []  # per-replica injectors, spawned lazily
        # Coordinator first; with TotalOrder the injected requests must reach
        # every replica (the ActiveRep delivery pattern) or the backups'
        # execution order stalls behind sequence numbers they never receive.
        self._servers = [s for s in cactus_servers if s is not None]
        self._with_total = any(
            "TotalOrder" in s.micro_protocol_names() for s in self._servers
        )
        iface = bank_interface()
        self._threads.append(
            threading.Thread(target=self._inject_loop, args=(burst_count, cycle))
        )
        for index in range(low):
            stub = deployment.client_stub(
                "acct", iface, client_micro_protocols=client_factory,
                client_id=f"low-bg-{index}", runtime_workers=24,
            )
            self._threads.append(
                threading.Thread(target=self._loop, args=(stub, low_think))
            )
        for thread in self._threads:
            thread.daemon = True
            thread.start()

    def _inject_loop(self, burst_count: int, cycle: float):
        """Per cycle: a back-to-back burst of ``burst_count`` highs, then
        silence until the next cycle boundary — busy then quiet TimedSched
        windows, with equal injected volume per replica in every
        configuration (count-based bursts, not time-boxed ones, so the
        total-order rows see the same load as the independent-replica rows).

        Without TotalOrder each replica gets its own self-pacing injector
        thread aligned to shared wall-clock cycle boundaries.  With
        TotalOrder the same request identity must reach every replica;
        backup copies are delivered by short-lived threads paced by the
        coordinator's own execution.
        """
        import time as _time

        if not self._with_total and len(self._servers) > 1:
            for server in self._servers[1:]:
                thread = threading.Thread(
                    target=self._per_server_burst,
                    args=(server, burst_count, cycle),
                    daemon=True,
                )
                thread.start()
                self._extra_threads.append(thread)
            self._per_server_burst(self._servers[0], burst_count, cycle)
            return

        from repro.core.request import PB_CLIENT_ID, Request

        def deliver(server, request):
            try:
                server.cactus_invoke(request)
            except Exception:  # noqa: BLE001 - load generator keeps going
                pass

        while not self._stop.is_set():
            burst_start = _time.perf_counter()
            for _ in range(burst_count):
                if self._stop.is_set():
                    return
                requests = [
                    Request(
                        "acct", "get_balance", [], piggyback={PB_CLIENT_ID: "high-bg"}
                    )
                    for _ in self._servers
                ]
                # One identity across replicas, like a real multicast call.
                for request in requests[1:]:
                    request.request_id = requests[0].request_id
                backup_threads = [
                    threading.Thread(target=deliver, args=(server, request), daemon=True)
                    for server, request in zip(self._servers[1:], requests[1:])
                ]
                for thread in backup_threads:
                    thread.start()
                deliver(self._servers[0], requests[0])
                for thread in backup_threads:
                    thread.join(timeout=5.0)
            _time.sleep(max(0.0, cycle - (_time.perf_counter() - burst_start)))

    def _per_server_burst(self, server, burst_count: int, cycle: float):
        """Cycle-aligned count-based burst generator against one replica."""
        import time as _time

        from repro.core.request import PB_CLIENT_ID, Request

        while not self._stop.is_set():
            now = _time.perf_counter()
            next_boundary = (now // cycle + 1) * cycle
            for _ in range(burst_count):
                if self._stop.is_set():
                    return
                request = Request(
                    "acct", "get_balance", [], piggyback={PB_CLIENT_ID: "high-bg"}
                )
                try:
                    server.cactus_invoke(request)
                except Exception:  # noqa: BLE001 - load generator keeps going
                    if self._stop.is_set():
                        return
            _time.sleep(max(0.0, next_boundary - _time.perf_counter()))

    def _loop(self, stub, think: float):
        import time as _time

        while not self._stop.is_set():
            try:
                stub.get_balance()
            except Exception:  # noqa: BLE001 - load generator keeps going
                if self._stop.is_set():
                    return
            if think > 0:
                _time.sleep(think)

    def stop(self):
        self._stop.set()
        for thread in self._threads + self._extra_threads:
            thread.join(timeout=10.0)


def build_table3(platform: str, config: str, priority_class: str):
    """Return (deployment, load, pair_fn measuring one priority class)."""
    deployment = make_deployment(platform)
    iface = bank_interface()
    client_factory, server_factory = _table3_protocols(config)
    replicas = TABLE3_SERVERS[config]
    # Per-replica configurations (TimedSched only at the coordinator when
    # TotalOrder is on) need the lower-level install path.
    skeletons = _install_table3_replicas(deployment, iface, replicas, server_factory)
    # High-priority bursts go straight into the Cactus servers (coordinator
    # first; with TotalOrder the load must reach every replica).
    load = Table3Load(
        deployment, client_factory, [s.cactus_server for s in skeletons]
    )
    # Gated replicas park replication legs on client pool workers; size
    # the pool so parked legs never starve fresh sends (see service.py).
    stub = deployment.client_stub(
        "acct",
        iface,
        client_micro_protocols=client_factory,
        client_id=f"{priority_class}-fg",
        runtime_workers=24,
    )

    def pair():
        stub.set_balance(100.0)
        stub.get_balance()

    pair()
    return deployment, load, pair


def _install_table3_replicas(deployment, iface, replicas, server_factory):
    """Install replicas with per-replica micro-protocol configurations."""
    from repro.core.adapters.corba import install_corba_replica
    from repro.core.adapters.rmi import install_rmi_replica
    from repro.core.server import CactusServer

    skeletons = []
    for replica in range(1, replicas + 1):
        host_name = deployment.replica_host_name("acct", replica)
        deployment._replica_hosts[("acct", replica)] = host_name
        protocols = server_factory(replica)

        def factory(platform, protocols=protocols):
            server = CactusServer.with_base(
                platform,
                protocols,
                name=f"cactus-server-acct-{platform.my_replica()}",
                request_timeout=30.0,
                priority_policy=identity_policy,
            )
            deployment._track(server)
            return server

        servant = BankAccount(work_loops=TABLE3_WORK_LOOPS)
        if deployment.platform == "corba":
            orb = deployment._new_orb(host_name).start()
            skeletons.append(
                install_corba_replica(
                    orb, "acct", replica, servant, iface,
                    cactus_server_factory=factory, total_replicas=replicas,
                )
            )
        else:
            runtime = deployment._new_rmi(host_name).start()
            skeletons.append(
                install_rmi_replica(
                    runtime, "acct", replica, servant, iface,
                    cactus_server_factory=factory, total_replicas=replicas,
                )
            )
    return skeletons


@pytest.fixture(params=["corba", "rmi"])
def bench_platform(request):
    return request.param
