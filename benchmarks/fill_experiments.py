#!/usr/bin/env python3
"""Fill EXPERIMENTS.md's MEASURED_* placeholders from benchmarks/results.json.

Tables 1 and 2 use medians (robust on a shared host); Table 3 uses means
(the paper's statistic).  Values are per *pair* for Tables 1/2 (as the
paper's first column) and per *call* for Table 3, in milliseconds.
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def stats_by_name(results: dict) -> dict[str, dict]:
    out = {}
    for bench in results["benchmarks"]:
        out[bench["name"]] = bench["stats"]
    return out


def main() -> None:
    results = json.loads((ROOT / "benchmarks" / "results.json").read_text())
    stats = stats_by_name(results)

    def median_ms(name: str) -> float:
        return stats[name]["median"] * 1000

    def mean_ms(name: str) -> float:
        return stats[name]["mean"] * 1000

    fills: dict[str, str] = {}

    # Table 1: per-pair medians.
    for platform in ("corba", "rmi"):
        upper = platform.upper()
        for rung, tag in (
            ("original", "ORIG"),
            ("cqos_stub", "STUB"),
            ("cqos_skeleton", "SKEL"),
            ("cactus_server", "CSRV"),
            ("cactus_client", "CCLI"),
        ):
            value = median_ms(f"test_table1[{platform}-{rung}]")
            fills[f"MEASURED_T1_{upper}_{tag}"] = f"{value:.3f}"

    # Table 2: per-pair medians.
    for platform in ("corba", "rmi"):
        upper = platform.upper()
        for config, tag in (
            ("privacy", "PRIV"),
            ("passive", "PASS"),
            ("active", "ACT"),
            ("active_vote", "VOTE"),
            ("active_vote_total", "AVT"),
            ("active_total", "AT"),
            ("active_total_privacy", "ATP"),
        ):
            value = median_ms(f"test_table2[{platform}-{config}]")
            fills[f"MEASURED_T2_{upper}_{tag}"] = f"{value:.3f}"

    # Table 3: per-call means, "high / low" cells.
    for platform in ("corba", "rmi"):
        upper = platform.upper()
        for config, tag in (
            ("timed", "TIMED"),
            ("timed_active", "ACT"),
            ("timed_active_vote", "VOTE"),
            ("timed_active_vote_total", "AVT"),
            ("timed_active_total", "AT"),
        ):
            high = mean_ms(f"test_table3[{platform}-high-{config}]") / 2
            low = mean_ms(f"test_table3[{platform}-low-{config}]") / 2
            fills[f"MEASURED_T3_{upper}_{tag}"] = f"{high:.2f} / {low:.2f}"

    path = ROOT / "EXPERIMENTS.md"
    text = path.read_text()
    missing = []
    for key, value in fills.items():
        if key in text:
            text = text.replace(key, value)
        else:
            missing.append(key)
    leftover = [line for line in text.splitlines() if "MEASURED_" in line]
    path.write_text(text)
    print(f"filled {len(fills) - len(missing)} cells")
    if missing:
        print("placeholders not found:", missing, file=sys.stderr)
    if leftover:
        print("unfilled lines remain:", leftover, file=sys.stderr)


if __name__ == "__main__":
    main()
