"""Closed-loop multiplexing throughput harness (PR 2).

Measures request/reply throughput and latency for N closed-loop clients
sharing ONE transport connection, across:

- network: in-memory and loopback TCP,
- connection mode: ``serialized`` (the pre-multiplexing one-in-flight
  baseline) vs ``mux`` (v2 correlation-id frames, concurrent in-flight),
- clients: 1 and 8 threads,
- servant variant: ``echo`` (no work — pure transport cost) and ``work``
  (~0.5 ms of servant CPU per call — the regime where multiplexing lets the
  server overlap requests instead of serializing them behind the wire).

Request payloads are drawn from the seeded zipfian generator in
:mod:`benchmarks.workloads` (PR 8) — the same skewed key mix the routing
benchmark replays — at a fixed 64-byte wire size.

Also runs a marshalling micro-benchmark: the compiled per-signature plan
(:mod:`repro.serialization.compiled`) against the recursive
:func:`~repro.orb.typed_marshal.write_typed` tree walk for one
``set_balance``/``get_balance``-style signature.

PR 3 adds the **conversion-overhead benchmark** (paper Table 1 analogue):
per platform (CORBA-DII vs RMI vs HTTP), the per-call cost of the Table 1
rungs — original platform stub, "+CQoS stub" (client interception +
abstract→platform request conversion), and "+CQoS skeleton" (both
interceptors, no Cactus) — on a zero-latency in-memory network, so the
deltas isolate the interception/conversion cost the paper measures.
Results go to ``BENCH_PR3.json``.

Throughput/marshalling results go to ``BENCH_PR2.json``.  Exit status is
non-zero if 8-client TCP multiplexing fails to beat the 8-client
serialized baseline — the CI smoke gate.

PR 7 adds the **execution-engine comparison** (``--engine async``): the
threaded mux path against the asyncio engine (event-loop framing + adaptive
outbound batching, ``TcpNetwork(engine="async")``) on the same closed-loop
scenarios plus a 16-client echo cell, and the async engine's batching
counters (frames per flush — the syscall-amortization evidence).  Results
go to ``BENCH_PR7.json``; the CI gate requires async ≥ threaded on the
echo workload at 16 concurrent clients, the regime where the demux
strategy dominates (8 clients sits at the crossover and is recorded,
not gated).

Usage::

    PYTHONPATH=src python benchmarks/throughput.py [--smoke] [--out PATH]
        [--conversion-out PATH] [--conversion-only]
        [--engine async] [--engine-out PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

sys.path.insert(0, str(Path(__file__).resolve().parent))

from workloads import zipf_sequence  # noqa: E402

from repro.net.memory import InMemoryNetwork  # noqa: E402
from repro.net.tcp import TcpNetwork  # noqa: E402

WORK_SECONDS = 0.0005  # ~0.5 ms of blocking servant work per "work" call

#: Distinct payload keys the zipfian request mix draws from (PR 8: the
#: closed-loop scenarios share the seeded generator with the routing bench
#: so both harnesses replay the same skewed key distribution).
PAYLOAD_KEYS = 256
PAYLOAD_BYTES = 64


def _zipf_payloads(slot: int, count: int) -> list[bytes]:
    """Per-client deterministic zipfian payload sequence (fixed wire size)."""
    return [
        b"%06d" % key + b"x" * (PAYLOAD_BYTES - 6)
        for key in zipf_sequence(PAYLOAD_KEYS, count, seed=slot)
    ]


def echo_handler(frame: bytes) -> bytes:
    return frame


def work_handler(frame: bytes) -> bytes:
    # Blocking (GIL-releasing) servant work — a downstream call, disk read,
    # or lock wait.  This is the regime multiplexing exists for: a serialized
    # connection stalls every queued caller behind it, a multiplexed one
    # overlaps the waits across server workers.
    time.sleep(WORK_SECONDS)
    return frame


def run_scenario(
    network, *, clients: int, calls_per_client: int, variant: str
) -> dict:
    """Closed loop: ``clients`` threads share one connection, each issuing
    ``calls_per_client`` sequential calls; returns throughput/latency stats."""
    handler = work_handler if variant == "work" else echo_handler
    server = network.host("server")
    listener = server.listen("bench", handler)
    client_host = network.host("client")
    connection = client_host.connect("server/bench")
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []
    start_barrier = threading.Barrier(clients + 1)

    def client_loop(slot: int) -> None:
        times = latencies[slot]
        try:
            payloads = _zipf_payloads(slot, calls_per_client)
            start_barrier.wait()
            for payload in payloads:
                t0 = time.perf_counter()
                reply = connection.call(payload, timeout=30.0)
                times.append(time.perf_counter() - t0)
                assert reply == payload
        except BaseException as exc:  # noqa: BLE001 - reported in results
            errors.append(exc)

    threads = [
        threading.Thread(target=client_loop, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    connection.close()
    listener.close()
    if errors:
        raise errors[0]
    flat = sorted(t for times in latencies for t in times)
    total_calls = len(flat)
    return {
        "clients": clients,
        "variant": variant,
        "calls": total_calls,
        "wall_s": round(wall, 6),
        "rps": round(total_calls / wall, 1) if wall > 0 else 0.0,
        "mean_ms": round(statistics.fmean(flat) * 1e3, 4),
        "p50_ms": round(flat[total_calls // 2] * 1e3, 4),
        "p99_ms": round(flat[min(total_calls - 1, int(total_calls * 0.99))] * 1e3, 4),
    }


def network_factories():
    return {
        ("memory", "serialized"): lambda: InMemoryNetwork(serialize_connections=True),
        ("memory", "mux"): lambda: InMemoryNetwork(),
        ("tcp", "serialized"): lambda: TcpNetwork(multiplex=False),
        ("tcp", "mux"): lambda: TcpNetwork(multiplex=True),
    }


MARSHAL_IDL = """
module bench {
  interface Probe {
    void record(in long a, in unsigned long b, in double c,
                in boolean d, in string note);
  };
};
"""


def run_marshal_bench(iterations: int) -> dict:
    """Compiled signature plan vs the recursive tree walk, same wire bytes.

    The signature has a four-primitive fixed prefix (fused into one
    ``struct.pack`` by the plan) and a string tail — the common shape of the
    paper's operations."""
    from repro.idl.compiler import compile_idl
    from repro.orb.typed_marshal import (
        marshal_arguments,
        read_typed,
        unmarshal_arguments,
        write_typed,
    )
    from repro.serialization.cdr import CdrInputStream, CdrOutputStream

    compiled = compile_idl(MARSHAL_IDL)
    interface = compiled.interface("bench::Probe")
    operation = interface.operation("record")
    args = _sample_arguments(operation, compiled)

    def tree_walk() -> bytes:
        out = CdrOutputStream()
        for param, value in zip(operation.params, args):
            write_typed(out, param.type, value, compiled)
        return out.getvalue()

    body = tree_walk()
    assert marshal_arguments(operation, args, compiled) == body

    def tree_read() -> list:
        stream = CdrInputStream(body)
        return [read_typed(stream, p.type, compiled) for p in operation.params]

    assert unmarshal_arguments(operation, body, compiled) == tree_read()

    # Interleaved best-of-5 so CPU frequency drift after the throughput
    # phase cannot bias one side of the comparison.
    tree_s = plan_s = rtree_s = rplan_s = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(iterations):
            tree_walk()
        tree_s = min(tree_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        for _ in range(iterations):
            marshal_arguments(operation, args, compiled)
        plan_s = min(plan_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        for _ in range(iterations):
            tree_read()
        rtree_s = min(rtree_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        for _ in range(iterations):
            unmarshal_arguments(operation, body, compiled)
        rplan_s = min(rplan_s, time.perf_counter() - t0)
    return {
        "operation": operation.name,
        "iterations": iterations,
        "tree_walk_us": round(tree_s / iterations * 1e6, 3),
        "compiled_plan_us": round(plan_s / iterations * 1e6, 3),
        "speedup": round(tree_s / plan_s, 2) if plan_s > 0 else None,
        "unmarshal_tree_us": round(rtree_s / iterations * 1e6, 3),
        "unmarshal_plan_us": round(rplan_s / iterations * 1e6, 3),
        "unmarshal_speedup": round(rtree_s / rplan_s, 2) if rplan_s > 0 else None,
    }


def _sample_arguments(operation, compiled) -> list:
    from repro.idl.ast import BasicType, NamedType, SequenceType

    samples = []
    for param in operation.params:
        t = param.type
        if isinstance(t, BasicType):
            samples.append(
                {
                    "boolean": True,
                    "string": "bench",
                    "float": 1.5,
                    "double": 1.5,
                    "any": "bench",
                }.get(t.kind, 7)
            )
        elif isinstance(t, SequenceType):
            samples.append([])
        elif isinstance(t, NamedType):
            cls = compiled.structs.get(t.name) or compiled.exceptions.get(t.name)
            samples.append(cls(**{m: 0 for m in cls.__members__}))
    return samples


# -- execution-engine comparison (PR 7) --------------------------------------

ENGINES = ("threaded", "async")


def run_engine_bench(calls_per_client: int, repeats: int) -> dict:
    """Threaded vs asyncio engine on the mux wire format, same scenarios.

    Each cell is best-of-``repeats`` (fresh network per run, so engine
    runtimes never share state).  Repeats are interleaved across engines —
    threaded run 1, async run 1, threaded run 2, ... — so machine-load
    drift during the bench hits both engines equally instead of biasing
    whichever ran last.  Async rows carry the network's cumulative batching
    counters — frames per flush > 1 is the syscall reduction adaptive
    batching buys on that scenario.
    """
    cells = [(1, "echo"), (1, "work"), (8, "echo"), (8, "work"), (16, "echo")]
    best_by_cell: dict[tuple, dict] = {}
    batching_by_cell: dict[tuple, dict | None] = {}
    for _ in range(repeats):
        for clients, variant in cells:
            for engine in ENGINES:
                cell = (engine, clients, variant)
                network = TcpNetwork(multiplex=True, engine=engine)
                try:
                    # Warmup: thread/loop spin-up, connection setup, and
                    # inline-promotion streaks all settle before timing.
                    run_scenario(
                        network,
                        clients=clients,
                        calls_per_client=max(20, calls_per_client // 10),
                        variant=variant,
                    )
                    row = run_scenario(
                        network,
                        clients=clients,
                        calls_per_client=calls_per_client,
                        variant=variant,
                    )
                    stats = network.batch_stats()
                finally:
                    network.close()
                held = best_by_cell.get(cell)
                if held is None or row["rps"] > held["rps"]:
                    best_by_cell[cell] = row
                    batching_by_cell[cell] = stats
    rows = []
    for engine in ENGINES:
        for clients, variant in cells:
            cell = (engine, clients, variant)
            best = best_by_cell[cell]
            batching = batching_by_cell[cell]
            best["network"] = "tcp"
            best["mode"] = "mux"
            best["engine"] = engine
            if batching is not None:
                best["batching"] = batching
            rows.append(best)
            extra = ""
            if batching is not None and batching.get("frames_per_flush"):
                extra = f"  {batching['frames_per_flush']} frames/flush"
            print(
                f"engine {engine:>8} {clients:>2}c {variant:>4}: "
                f"{best['rps']:>9} rps  p50 {best['p50_ms']} ms  "
                f"p99 {best['p99_ms']} ms{extra}"
            )

    def rps_of(engine: str, clients: int, variant: str) -> float:
        return next(
            r["rps"]
            for r in rows
            if r["engine"] == engine
            and r["clients"] == clients
            and r["variant"] == variant
        )

    async_echo_16c = rps_of("async", 16, "echo")
    threaded_echo_16c = rps_of("threaded", 16, "echo")
    async_batching_16c_echo = next(
        r.get("batching")
        for r in rows
        if (r["engine"], r["clients"], r["variant"]) == ("async", 16, "echo")
    )
    summary = {
        # The gated scenario: echo at 16 concurrent clients, the regime
        # where the demultiplexing strategy dominates — the threaded
        # leader/follower handoff degrades as waiters grow while the
        # event-loop engine keeps scaling.  8 clients sits at the
        # crossover (parity within runner noise) and is recorded but not
        # gated.
        "threaded_echo_16c_rps": threaded_echo_16c,
        "async_echo_16c_rps": async_echo_16c,
        "async_vs_threaded_echo_16c": (
            round(async_echo_16c / threaded_echo_16c, 2) if threaded_echo_16c else None
        ),
        "async_vs_threaded_echo_8c": round(
            rps_of("async", 8, "echo") / rps_of("threaded", 8, "echo"), 2
        ),
        "async_vs_threaded_work_8c": round(
            rps_of("async", 8, "work") / rps_of("threaded", 8, "work"), 2
        ),
        "async_vs_threaded_echo_1c": round(
            rps_of("async", 1, "echo") / rps_of("threaded", 1, "echo"), 2
        ),
        # Syscall-amortization evidence: frames coalesced per transport
        # write on the gated scenario (1.0 would mean no batching).
        "async_frames_per_flush_16c_echo": (
            async_batching_16c_echo.get("frames_per_flush")
            if async_batching_16c_echo
            else None
        ),
    }
    return {"results": rows, "summary": summary}


# -- conversion overhead (PR 3: paper Table 1 analogue) ----------------------

CONVERSION_PLATFORMS = ("corba", "rmi", "http")
CONVERSION_RUNGS = ("original", "cqos_stub", "cqos_stub_skeleton")


def _timed_calls(callable_, calls: int) -> dict:
    """Per-call latency stats (µs) for ``calls`` sequential invocations."""
    for _ in range(min(20, calls)):  # warm caches, lazy binds, connections
        callable_()
    samples = []
    for _ in range(calls):
        t0 = time.perf_counter()
        callable_()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return {
        "calls": calls,
        "mean_us": round(statistics.fmean(samples) * 1e6, 2),
        "p50_us": round(samples[len(samples) // 2] * 1e6, 2),
        "p99_us": round(samples[min(len(samples) - 1, int(len(samples) * 0.99))] * 1e6, 2),
    }


def run_conversion_rung(platform: str, rung: str, calls: int) -> dict:
    """One Table 1 cell: platform × interception rung, in-memory network.

    - ``original``: the platform-generated stub against an un-intercepted
      servant — the baseline;
    - ``cqos_stub``: the CQoS stub in pass-through mode (interception +
      abstract→platform request conversion — DII on CORBA) against the
      same un-intercepted servant;
    - ``cqos_stub_skeleton``: both interceptors (the skeleton rebuilds the
      abstract request server-side and dispatches natively), no Cactus.
    """
    from repro.apps.bank import BankAccount, bank_compiled, bank_interface
    from repro.core.service import CqosDeployment

    network = InMemoryNetwork()
    deployment = CqosDeployment(
        network, platform=platform, compiled=bank_compiled(), request_timeout=30.0
    )
    interface = bank_interface()
    try:
        if rung == "cqos_stub_skeleton":
            deployment.add_replicas(
                "acct", BankAccount, interface, replicas=1, server_micro_protocols=None
            )
        else:
            deployment.deploy_plain_replica("acct", BankAccount(), interface)
        if rung == "original":
            stub = deployment.plain_stub("acct", interface)
        else:
            stub = deployment.client_stub("acct", interface, with_cactus_client=False)
        row = _timed_calls(stub.get_balance, calls)
    finally:
        deployment.close()
    row["platform"] = platform
    row["rung"] = rung
    return row


def run_conversion_bench(calls: int) -> dict:
    """The full Table 1 analogue grid, with per-platform overhead deltas."""
    rows = [
        run_conversion_rung(platform, rung, calls)
        for platform in CONVERSION_PLATFORMS
        for rung in CONVERSION_RUNGS
    ]

    def mean_of(platform: str, rung: str) -> float:
        return next(
            r["mean_us"] for r in rows if r["platform"] == platform and r["rung"] == rung
        )

    overheads = {}
    for platform in CONVERSION_PLATFORMS:
        base = mean_of(platform, "original")
        overheads[platform] = {
            "original_us": base,
            "stub_overhead_us": round(mean_of(platform, "cqos_stub") - base, 2),
            "stub_skeleton_overhead_us": round(
                mean_of(platform, "cqos_stub_skeleton") - base, 2
            ),
        }
    return {"results": rows, "overhead_us": overheads}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny iteration counts (CI)"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR2.json"),
        help="throughput/marshalling output JSON path",
    )
    parser.add_argument(
        "--conversion-out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR3.json"),
        help="conversion-overhead output JSON path",
    )
    parser.add_argument(
        "--conversion-only",
        action="store_true",
        help="run only the per-platform conversion-overhead benchmark",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        help="run the execution-engine comparison (threaded vs async) only",
    )
    parser.add_argument(
        "--engine-out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR7.json"),
        help="engine-comparison output JSON path",
    )
    options = parser.parse_args(argv)

    calls_per_client = 40 if options.smoke else 400
    marshal_iterations = 500 if options.smoke else 20000
    conversion_calls = 60 if options.smoke else 2000

    if options.engine is not None:
        # Longer runs than the generic smoke settings: the engine gate
        # compares two implementations on a shared runner, so each cell
        # must outlast scheduler noise (sub-0.1s runs flip the verdict).
        engine_calls = 300 if options.smoke else 1000
        engine_repeats = 3 if options.smoke else 4
        engine = run_engine_bench(engine_calls, engine_repeats)
        report = {
            "bench": "engine-pr7",
            "smoke": options.smoke,
            "calls_per_client": engine_calls,
            "repeats": engine_repeats,
            **engine,
        }
        Path(options.engine_out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {options.engine_out}")
        summary = engine["summary"]
        print(
            f"async/threaded echo@16c: {summary['async_vs_threaded_echo_16c']}x  "
            f"echo@8c: {summary['async_vs_threaded_echo_8c']}x  "
            f"({summary['async_frames_per_flush_16c_echo']} frames/flush)"
        )
        if summary["async_echo_16c_rps"] < summary["threaded_echo_16c_rps"]:
            print("FAIL: async engine below the threaded baseline on echo@16clients")
            return 1
        return 0

    conversion = run_conversion_bench(conversion_calls)
    for row in conversion["results"]:
        print(
            f"conversion {row['platform']:>5} {row['rung']:<18}: "
            f"mean {row['mean_us']:>8} us  p50 {row['p50_us']} us"
        )
    for platform, deltas in conversion["overhead_us"].items():
        print(
            f"overhead {platform:>5}: +stub {deltas['stub_overhead_us']} us  "
            f"+stub+skeleton {deltas['stub_skeleton_overhead_us']} us"
        )
    conversion_report = {
        "bench": "conversion-pr3",
        "smoke": options.smoke,
        "calls": conversion_calls,
        **conversion,
    }
    Path(options.conversion_out).write_text(
        json.dumps(conversion_report, indent=2) + "\n"
    )
    print(f"wrote {options.conversion_out}")
    if options.conversion_only:
        return 0

    results = []
    for (net_name, mode), factory in network_factories().items():
        for clients in (1, 8):
            for variant in ("echo", "work"):
                network = factory()
                try:
                    row = run_scenario(
                        network,
                        clients=clients,
                        calls_per_client=calls_per_client,
                        variant=variant,
                    )
                finally:
                    network.close()
                row["network"] = net_name
                row["mode"] = mode
                results.append(row)
                print(
                    f"{net_name:>6} {mode:>10} {clients}c {variant:>4}: "
                    f"{row['rps']:>9} rps  p50 {row['p50_ms']} ms  "
                    f"p99 {row['p99_ms']} ms"
                )

    marshal = run_marshal_bench(marshal_iterations)
    print(
        f"marshal {marshal['operation']}: tree {marshal['tree_walk_us']} us  "
        f"plan {marshal['compiled_plan_us']} us  x{marshal['speedup']}"
    )
    print(
        f"unmarshal {marshal['operation']}: tree {marshal['unmarshal_tree_us']} us  "
        f"plan {marshal['unmarshal_plan_us']} us  x{marshal['unmarshal_speedup']}"
    )

    def rps_of(network: str, mode: str, clients: int, variant: str) -> float:
        for row in results:
            if (
                row["network"] == network
                and row["mode"] == mode
                and row["clients"] == clients
                and row["variant"] == variant
            ):
                return row["rps"]
        raise KeyError((network, mode, clients, variant))

    serial_8c = rps_of("tcp", "serialized", 8, "work")
    mux_8c = rps_of("tcp", "mux", 8, "work")
    summary = {
        "tcp_serialized_8c_work_rps": serial_8c,
        "tcp_mux_8c_work_rps": mux_8c,
        "tcp_mux_speedup_8c_work": round(mux_8c / serial_8c, 2) if serial_8c else None,
        "tcp_mux_speedup_8c_echo": round(
            rps_of("tcp", "mux", 8, "echo") / rps_of("tcp", "serialized", 8, "echo"), 2
        ),
        "tcp_single_client_work_p50_ms": {
            "serialized": next(
                r["p50_ms"]
                for r in results
                if (r["network"], r["mode"], r["clients"], r["variant"])
                == ("tcp", "serialized", 1, "work")
            ),
            "mux": next(
                r["p50_ms"]
                for r in results
                if (r["network"], r["mode"], r["clients"], r["variant"])
                == ("tcp", "mux", 1, "work")
            ),
        },
        "memory_mux_speedup_8c_work": round(
            rps_of("memory", "mux", 8, "work")
            / rps_of("memory", "serialized", 8, "work"),
            2,
        ),
    }
    report = {
        "bench": "throughput-pr2",
        "smoke": options.smoke,
        "calls_per_client": calls_per_client,
        "results": results,
        "marshal": marshal,
        "summary": summary,
    }
    Path(options.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {options.out}")
    print(f"mux@8c work speedup: {summary['tcp_mux_speedup_8c_work']}x")

    if mux_8c <= serial_8c:
        print("FAIL: tcp mux@8clients did not beat the serialized baseline")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
