"""Overload-surge benchmark: the composed protection stack under 10x load.

Scenario: a bank object whose servant serializes on an internal resource
(the classic single-threaded backend), replicated twice.  Three phases:

1. **capacity** — closed-loop clients at sustainable concurrency measure
   peak goodput (successes delivered within the SLO budget per second);
2. **surge** — an open-loop arrival process at 10x the measured peak
   against the *protected* deployment: client side DeadlineBudget +
   RetryBackoff + ClientCache (stale-while-shedding) + LoadBalance, server
   side DeadlineShed + AdmissionControl + CacheInvalidator + LoadReporter;
3. **baseline** — the same 10x arrival schedule against a bare deployment
   (no stack): requests queue behind the serialized servant, every reply
   comes back seconds late, and in-budget goodput collapses.

The full run also fires a **spike**: one million arrivals enqueued at a
single instant; clients that cannot fire an arrival within its budget give
up locally (open-loop callers stop waiting), so the gate is that the stack
keeps serving in-deadline work and stays available afterwards.

Gates (CI exit status):

- surge goodput >= 80% of measured peak goodput;
- ZERO replies served past their PB_DEADLINE across every protected phase,
  audited inside the stack at delivery time (:class:`DeadlineAuditor`) —
  a late reply served to the caller is a stack bug, not a statistic;
- (full run) the object answers again after the million-arrival spike.

The separately reported ``over_budget_observed`` counts client wall-clock
observations beyond BUDGET + GRACE; those include scheduler descheduling
outside the stack and are observability, not a gate.

Results go to ``BENCH_PR6.json``.

Usage::

    PYTHONPATH=src python benchmarks/surge.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import queue
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.bank import BankAccount, bank_compiled, bank_interface  # noqa: E402
from repro.cactus.composite import MicroProtocol  # noqa: E402
from repro.cactus.events import ORDER_LAST, Occurrence  # noqa: E402
from repro.core.events import EV_INVOKE_SUCCESS  # noqa: E402
from repro.core.service import CqosDeployment  # noqa: E402
from repro.net.memory import InMemoryNetwork  # noqa: E402
from repro.qos import DeadlineBudget, RetryBackoff  # noqa: E402
from repro.qos.extensions import (  # noqa: E402
    AdmissionControl,
    AdmissionRejectedError,
    CacheInvalidator,
    ClientCache,
    LoadBalance,
    LoadReporter,
)
from repro.util.errors import DeadlineExceededError  # noqa: E402

#: Per-request SLO budget (seconds); PB_DEADLINE = arrival + BUDGET.
BUDGET = 0.25
#: Measurement grace on the client-observed elapsed time: the stopwatch
#: starts slightly before DeadlineBudget stamps the deadline.
GRACE = 0.05
#: Serialized servant service time (seconds) — the capacity bottleneck.
SERVICE_TIME = 0.005
WRITE_RATIO = 0.15
REPLICAS = 2
CLIENT_STUBS = 8

READS = ("get_balance", "owner", "history")
INVALIDATES = {
    "deposit": ["get_balance"],
    "withdraw": ["get_balance"],
    "set_balance": ["get_balance"],
}


class DeadlineAuditor(MicroProtocol):
    """Counts replies *served* past their PB_DEADLINE, judged at delivery
    time on the runtime clock — the exact invariant the stack must hold.

    Bound LAST on ``invokeSuccess``: ``DeadlineBudget.reject_late`` (FIRST)
    halts expired replies, so anything the auditor still sees is being
    delivered to the caller.  This is the gate; the client-observed wall
    time in :func:`fire_one` additionally includes scheduler descheduling
    *outside* the stack (stopwatch start -> deadline stamp, delivery ->
    stopwatch stop), which is observability, not a stack property.
    """

    name = "DeadlineAuditor"

    def start(self) -> None:
        self.bind(EV_INVOKE_SUCCESS, self.audit, order=ORDER_LAST)

    def audit(self, occurrence: Occurrence) -> None:
        request = occurrence.args[0]
        if request.deadline is not None and request.deadline_expired(
            self.composite.runtime.clock.now()
        ):
            self.incr("late_served")


class SerializedAccount(BankAccount):
    """A bank account whose backend admits one operation at a time."""

    def __init__(self):
        super().__init__()
        self._backend = threading.Lock()

    def _hit_backend(self):
        with self._backend:
            time.sleep(SERVICE_TIME)

    def get_balance(self):
        self._hit_backend()
        return super().get_balance()

    def deposit(self, amount):
        self._hit_backend()
        return super().deposit(amount)


class WorkerStats:
    """Per-worker counters (no locks; summed after the phase)."""

    __slots__ = (
        "successes", "over_budget_observed", "deadline_sheds",
        "admission_sheds", "gave_up", "errors",
    )

    def __init__(self):
        self.successes = 0
        self.over_budget_observed = 0
        self.deadline_sheds = 0
        self.admission_sheds = 0
        self.gave_up = 0
        self.errors = 0


def fire_one(stub, op: str, stats: WorkerStats) -> None:
    start = time.monotonic()
    try:
        if op == "deposit":
            stub.deposit(1.0)
        else:
            stub.get_balance()
    except DeadlineExceededError:
        stats.deadline_sheds += 1
        return
    except AdmissionRejectedError:
        stats.admission_sheds += 1
        return
    except Exception:
        stats.errors += 1
        return
    if time.monotonic() - start > BUDGET + GRACE:
        stats.over_budget_observed += 1
    else:
        stats.successes += 1


def pick_op(counter: int) -> str:
    # Deterministic 85/15 read/write mix (no RNG: reproducible schedules).
    return "deposit" if counter % 100 < int(WRITE_RATIO * 100) else "get_balance"


def closed_loop_phase(stubs, workers: int, duration: float) -> dict:
    """Sustainable-concurrency closed loop: measures peak goodput."""
    stop = threading.Event()
    all_stats = [WorkerStats() for _ in range(workers)]

    def worker(idx: int) -> None:
        stub = stubs[idx % len(stubs)]
        stats = all_stats[idx]
        counter = idx * 7
        while not stop.is_set():
            fire_one(stub, pick_op(counter), stats)
            counter += 1

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(workers)
    ]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(30.0)
    elapsed = time.monotonic() - start
    return summarize(all_stats, elapsed, offered=None)


def open_loop_phase(
    stubs, workers: int, rate: float, duration: float, burst: int = 0
) -> dict:
    """Open-loop arrivals at ``rate``/s for ``duration`` seconds (plus an
    optional instantaneous ``burst``).  A worker that pops an arrival whose
    budget already expired while queued gives up locally — open-loop
    callers stop waiting — so backlog never masquerades as served load."""
    arrivals: queue.Queue = queue.Queue()
    all_stats = [WorkerStats() for _ in range(workers)]
    start = time.monotonic()
    count = int(rate * duration)
    for i in range(count):
        arrivals.put(start + i / rate)
    now = time.monotonic()
    for _ in range(burst):
        arrivals.put(now)
    offered = count + burst

    def worker(idx: int) -> None:
        stub = stubs[idx % len(stubs)]
        stats = all_stats[idx]
        counter = idx * 13
        while True:
            try:
                arrival = arrivals.get_nowait()
            except queue.Empty:
                return
            wait = arrival - time.monotonic()
            if wait > 0:
                time.sleep(wait)
            elif -wait > BUDGET:
                stats.gave_up += 1  # queued past its budget: caller is gone
                continue
            fire_one(stub, pick_op(counter), stats)
            counter += 1

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120.0)
    elapsed = time.monotonic() - start
    return summarize(all_stats, elapsed, offered=offered)


def summarize(all_stats: list[WorkerStats], elapsed: float, offered) -> dict:
    total = WorkerStats()
    for stats in all_stats:
        for field in WorkerStats.__slots__:
            setattr(total, field, getattr(total, field) + getattr(stats, field))
    report = {field: getattr(total, field) for field in WorkerStats.__slots__}
    report["elapsed_s"] = round(elapsed, 3)
    report["goodput_rps"] = round(total.successes / elapsed, 1) if elapsed else 0.0
    if offered is not None:
        report["offered"] = offered
    return report


def build_protected(deployment: CqosDeployment):
    auditors = [DeadlineAuditor() for _ in range(CLIENT_STUBS)]
    deployment.add_replicas(
        "acct",
        SerializedAccount,
        bank_interface(),
        replicas=REPLICAS,
        server_micro_protocols=lambda: [
            AdmissionControl(
                max_concurrent=8,
                max_queue_depth=64,
                deadline_aware=True,
                exempt_high_priority=False,
            ),
            CacheInvalidator(read_operations=list(READS), invalidates=INVALIDATES),
            LoadReporter(),
        ],
    )
    stubs = [
        deployment.client_stub(
            "acct",
            bank_interface(),
            client_micro_protocols=lambda auditor=auditor: [
                DeadlineBudget(budget=BUDGET),
                RetryBackoff(max_attempts=2, base_delay=0.01, max_delay=0.1, seed=11),
                ClientCache(
                    read_operations=["get_balance"],
                    ttl=0.05,
                    stale_while_shedding=True,
                ),
                LoadBalance(poll_interval=0.5, seed=11),
                auditor,
            ],
        )
        for auditor in auditors
    ]
    return stubs, auditors


def build_baseline(deployment: CqosDeployment):
    deployment.add_replicas(
        "acct", SerializedAccount, bank_interface(), replicas=REPLICAS
    )
    return [
        deployment.client_stub("acct", bank_interface())
        for _ in range(CLIENT_STUBS)
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="scaled-down durations (CI)"
    )
    parser.add_argument("--out", default="BENCH_PR6.json")
    options = parser.parse_args(argv)

    if options.smoke:
        capacity_s, surge_s, baseline_s = 1.0, 1.5, 1.2
        peak_workers, surge_workers = 8, 48
        spike_burst = 0
    else:
        capacity_s, surge_s, baseline_s = 3.0, 8.0, 5.0
        peak_workers, surge_workers = 8, 160
        spike_burst = 1_000_000

    report: dict = {
        "benchmark": "overload-surge",
        "budget_s": BUDGET,
        "service_time_s": SERVICE_TIME,
        "replicas": REPLICAS,
        "write_ratio": WRITE_RATIO,
        "smoke": options.smoke,
    }

    # -- protected deployment: capacity, surge, spike ----------------------
    network = InMemoryNetwork()
    deployment = CqosDeployment(
        network, platform="rmi", compiled=bank_compiled(), request_timeout=30.0
    )
    try:
        stubs, auditors = build_protected(deployment)
        stubs[0].set_balance(0.0)  # warm bindings
        print("capacity phase (closed loop)...", flush=True)
        peak = closed_loop_phase(stubs, peak_workers, capacity_s)
        report["peak"] = peak
        surge_rate = 10.0 * max(peak["goodput_rps"], 1.0)
        report["surge_rate_rps"] = round(surge_rate, 1)
        print(f"surge phase (open loop @ {surge_rate:.0f}/s)...", flush=True)
        surge = open_loop_phase(stubs, surge_workers, surge_rate, surge_s)
        report["surge"] = surge
        if spike_burst:
            print(f"spike phase ({spike_burst} instantaneous arrivals)...",
                  flush=True)
            spike = open_loop_phase(
                stubs, surge_workers, rate=1.0, duration=0.0, burst=spike_burst
            )
            report["spike"] = spike
            # Availability probe: the object answers again after the spike.
            # The stack is *expected* to shed for a moment while the inflated
            # service-time EWMA decays back down (congestion-probe decay in
            # AdmissionControl); we measure how long recovery takes.
            available = False
            probe_start = time.monotonic()
            while time.monotonic() - probe_start < 10.0:
                try:
                    available = stubs[0].owner() == "alice"
                    break
                except (AdmissionRejectedError, DeadlineExceededError):
                    time.sleep(0.05)
            report["post_spike_available"] = available
            report["post_spike_recovery_s"] = round(
                time.monotonic() - probe_start, 3
            )
        # The stack invariant, judged at delivery time on the shared clock:
        # replies served to a caller after their PB_DEADLINE, all phases.
        report["late_served"] = sum(
            auditor.stats().get("late_served", 0) for auditor in auditors
        )
    finally:
        deployment.close()

    # -- baseline deployment: the same surge without the stack -------------
    network = InMemoryNetwork()
    deployment = CqosDeployment(
        network, platform="rmi", compiled=bank_compiled(), request_timeout=30.0
    )
    try:
        bare = build_baseline(deployment)
        bare[0].set_balance(0.0)
        print("baseline surge (no protection stack)...", flush=True)
        baseline = open_loop_phase(bare, surge_workers, surge_rate, baseline_s)
        report["baseline"] = baseline
    finally:
        deployment.close()

    # -- gates -------------------------------------------------------------
    gates = {
        "surge_goodput_ge_80pct_of_peak": (
            surge["goodput_rps"] >= 0.8 * peak["goodput_rps"]
        ),
        "zero_deadline_violations": report["late_served"] == 0,
    }
    if "post_spike_available" in report:
        gates["available_after_spike"] = bool(report["post_spike_available"])
    report["gates"] = gates
    report["baseline_collapsed"] = (
        baseline["over_budget_observed"] > 0
        or baseline["goodput_rps"] < 0.5 * surge["goodput_rps"]
    )

    Path(options.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    failed = [name for name, passed in gates.items() if not passed]
    if failed:
        print(f"GATE FAILURES: {failed}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
