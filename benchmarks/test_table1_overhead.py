"""Table 1 reproduction: interception overhead ladder.

Paper rows (average response time for a set_balance + get_balance pair):

    Original CORBA 2.74ms -> +CQoS stub 3.28 -> +CQoS skeleton 3.46
    -> +Cactus server 3.91 -> +Cactus client 4.31
    Original RMI 2.19 -> 2.21 -> 2.27 -> 2.43 -> 2.61

Expected shape here: each added component costs more than the previous
configuration (monotone cumulative overhead); the CQoS conversion overhead
is larger on the CORBA substrate than on RMI; the RMI baseline is faster.
"""

import pytest

from conftest import BENCH_OPTIONS, TABLE1_RUNGS, build_table1


@pytest.mark.parametrize("rung", TABLE1_RUNGS)
def test_table1(benchmark, bench_platform, rung):
    deployment, pair = build_table1(bench_platform, rung)
    try:
        benchmark.pedantic(pair, **BENCH_OPTIONS)
    finally:
        deployment.close()
    benchmark.extra_info["table"] = "1"
    benchmark.extra_info["platform"] = bench_platform
    benchmark.extra_info["configuration"] = rung
