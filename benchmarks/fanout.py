"""Scatter-gather replica fan-out benchmark (PR 10).

Two measurements over real TCP loopback, on both execution engines,
written to ``BENCH_PR10.json``:

1. **Fan-out scaling** — per-call p50 at 1 / 3 / 5 replicas for the
   **sequential** baseline the pipeline replaced (one blocking
   ``invoke_server`` per replica, one after another) against the
   **pipelined** ActiveRep fan-out (all replicas submitted up front via
   ``invoke_server_async``, replies gathered in completion order).  Every
   replica carries a fixed ``SERVICE_S`` service time so the cells measure
   the latency regime the fan-out exists for (per-replica latency >>
   client-side CPU, as on any real network).  The sequential cost grows
   linearly with the replica count; the pipelined cost must stay near the
   single-replica invoke.

2. **Gather policies under a straggler** — a 3-replica group whose third
   replica delays every read; per-call p50 for ``all`` / ``first`` /
   ``quorum:2`` / ``quorum:3``.  ``quorum:2`` demonstrates quorum
   early-return (two fast matching replies answer, the straggler is
   abandoned); ``quorum:3`` shows what early-return avoids (it must wait
   for the straggler's matching reply).

CI gates (exit 1 on violation), both evaluated on the async engine:

- pipeline — pipelined ActiveRep p50 at 3 replicas must be within
  ``PIPELINE_LIMIT`` (1.4x) of the single-replica invoke p50;
- quorum early-return — ``quorum:2`` p50 must beat the straggler delay
  while ``quorum:3`` p50 cannot.

Usage::

    PYTHONPATH=src python benchmarks/fanout.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.bank import BankAccount, bank_compiled, bank_interface  # noqa: E402
from repro.core.request import Request  # noqa: E402
from repro.core.service import CqosDeployment  # noqa: E402
from repro.qos import ActiveRep  # noqa: E402

#: Pipelined ActiveRep p50 at 3 replicas may be at most this multiple of
#: the single-replica invoke p50 (async engine).  The sequential baseline
#: it replaced sits near 3.0x by construction.
PIPELINE_LIMIT = 1.4
#: Per-replica service time in the scaling cells: large against loopback
#: latency (~1 ms) so the cells measure wire/servant latency — the thing
#: pipelining hides — rather than client-side event-machinery CPU.
SERVICE_S = 0.005
#: The straggler's per-read delay in the policy cells.  Large against
#: loopback latency (~1 ms) so the quorum verdicts are noise-proof.
STRAGGLE_S = 0.05
#: The platform the gates run on (the kernel fan-out path is shared; the
#: other adapters differ only in conversion cost, which every cell pays).
GATE_PLATFORM = "rmi"
GATE_ENGINE = "async"

WARMUP = 5


class SlowBank(BankAccount):
    """A replica servant that straggles on every read."""

    def __init__(self, delay: float):
        super().__init__()
        self._delay = delay

    def get_balance(self) -> float:
        time.sleep(self._delay)
        return super().get_balance()


def _straggler_factory(delay: float, straggler_replica: int = 3):
    built = [0]

    def factory():
        built[0] += 1
        if built[0] == straggler_replica:
            return SlowBank(delay)
        return BankAccount()

    return factory


def _p50(callable_, calls: int) -> float:
    for _ in range(min(WARMUP, calls)):  # warm binds, sockets, caches
        callable_()
    samples = []
    for _ in range(calls):
        t0 = time.perf_counter()
        callable_()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2]


# -- 1. fan-out scaling -------------------------------------------------------


def run_fanout_scaling(engine: str, calls: int) -> dict:
    rows = []
    for replicas in (1, 3, 5):
        deployment = CqosDeployment.over_tcp(
            GATE_PLATFORM, bank_compiled(), engine=engine, request_timeout=30.0
        )
        try:
            deployment.add_replicas(
                "acct",
                lambda: SlowBank(SERVICE_S),
                bank_interface(),
                replicas=replicas,
            )
            stub = deployment.client_stub(
                "acct",
                bank_interface(),
                client_micro_protocols=lambda: [ActiveRep()],
            )
            platform = stub._platform

            def sequential():
                # The replaced behaviour: one blocking invoke per replica,
                # strictly one after another.
                request = Request("acct", "get_balance", [])
                for server in range(1, replicas + 1):
                    platform.invoke_server(server, request)

            sequential_p50 = _p50(sequential, calls)
            pipelined_p50 = _p50(stub.get_balance, calls)
        finally:
            deployment.close()
        rows.append(
            {
                "engine": engine,
                "replicas": replicas,
                "calls": calls,
                "sequential_p50_ms": round(sequential_p50 * 1e3, 3),
                "pipelined_p50_ms": round(pipelined_p50 * 1e3, 3),
                "speedup": round(sequential_p50 / pipelined_p50, 2)
                if pipelined_p50 > 0
                else None,
            }
        )
        print(
            f"fanout {engine:>8} {replicas} replica(s): "
            f"sequential {rows[-1]['sequential_p50_ms']:>7} ms  "
            f"pipelined {rows[-1]['pipelined_p50_ms']:>7} ms  "
            f"x{rows[-1]['speedup']}"
        )
    single = rows[0]["pipelined_p50_ms"]
    at_three = next(r for r in rows if r["replicas"] == 3)["pipelined_p50_ms"]
    return {
        "results": rows,
        "pipelined_3_vs_1": round(at_three / single, 2) if single > 0 else None,
    }


# -- 2. gather policies under a straggler -------------------------------------


def run_policies(engine: str, calls: int) -> dict:
    rows = {}
    for policy in ("all", "first", "quorum:2", "quorum:3"):
        deployment = CqosDeployment.over_tcp(
            GATE_PLATFORM, bank_compiled(), engine=engine, request_timeout=30.0
        )
        try:
            deployment.add_replicas(
                "acct",
                _straggler_factory(STRAGGLE_S),
                bank_interface(),
                replicas=3,
            )
            stub = deployment.client_stub(
                "acct",
                bank_interface(),
                client_micro_protocols=lambda: [ActiveRep(gather_policy=policy)],
            )
            rows[policy] = round(_p50(stub.get_balance, calls) * 1e3, 3)
        finally:
            deployment.close()
        print(f"policy {engine:>8} {policy:>8}: p50 {rows[policy]:>8} ms")
    return {
        "engine": engine,
        "replicas": 3,
        "calls": calls,
        "straggle_ms": STRAGGLE_S * 1e3,
        "p50_ms": rows,
    }


# -- driver -------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny iteration counts (CI)"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR10.json"),
        help="output JSON path",
    )
    options = parser.parse_args(argv)

    scaling_calls = 40 if options.smoke else 150
    policy_calls = 12 if options.smoke else 60

    scaling = {
        engine: run_fanout_scaling(engine, scaling_calls)
        for engine in ("threaded", "async")
    }
    policies = {
        engine: run_policies(engine, policy_calls)
        for engine in ("threaded", "async")
    }

    gate_scaling = scaling[GATE_ENGINE]
    gate_policies = policies[GATE_ENGINE]["p50_ms"]
    straggle_ms = STRAGGLE_S * 1e3
    gates = {
        "pipeline_limit": PIPELINE_LIMIT,
        "pipeline_ok": gate_scaling["pipelined_3_vs_1"] <= PIPELINE_LIMIT,
        "quorum_early_return_ok": (
            gate_policies["quorum:2"] < straggle_ms
            and gate_policies["quorum:3"] >= straggle_ms
        ),
    }
    report = {
        "bench": "fanout-pr10",
        "smoke": options.smoke,
        "fanout_scaling": scaling,
        "gather_policies": policies,
        "gates": gates,
    }
    Path(options.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {options.out}")
    print(
        f"pipelined 3v1 ({GATE_ENGINE}): {gate_scaling['pipelined_3_vs_1']}x "
        f"(limit {PIPELINE_LIMIT}x)  quorum:2 {gate_policies['quorum:2']} ms / "
        f"quorum:3 {gate_policies['quorum:3']} ms vs straggler {straggle_ms} ms"
    )

    failed = [name for name, ok in gates.items() if name.endswith("_ok") and not ok]
    if failed:
        print(f"FAIL: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
