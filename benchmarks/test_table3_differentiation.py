"""Table 3 reproduction: TimedSched service differentiation.

Paper rows (average response time, ms, mixed high/low priority clients):

    config          servers  CORBA hi/lo     RMI hi/lo
    TimedSched         1     2.30 / 4.70    1.34 / 3.29
    + Active Rep       3     4.43 / 9.00    2.33 / 4.75
    + Vote             3     5.19 / 10.47   2.51 / 5.12
    + Total            3     7.32 / 14.61   4.08 / 8.16
    Active+Total       3     6.60 / 13.17   3.74 / 7.45

Expected shape: in every configuration the low-priority response time is
roughly double the high-priority one ("protects high priority clients
almost completely from the impact of low priority clients"), and the
config-to-config ordering follows Table 2's.

Each benchmark measures a foreground client of one priority class while a
background mix loads the server, mirroring the paper's statically
designated client mix: count-based high-priority bursts injected directly
into each replica's Cactus server on cycle-aligned timer threads (equal
volume per replica in every configuration) plus two low-priority client
loops.  Read the **Mean** column for this table — the paper reports
averages, and the window-gating delays land on a minority of low-priority
requests, which a median hides.
"""

import pytest

from conftest import TABLE3_CONFIGS, build_table3

# More rounds than Tables 1/2: each sample sits under background load, so
# the mean needs volume to settle.
TABLE3_OPTIONS = dict(rounds=40, iterations=4, warmup_rounds=3)


@pytest.mark.parametrize("config", TABLE3_CONFIGS)
@pytest.mark.parametrize("priority_class", ["high", "low"])
def test_table3(benchmark, bench_platform, config, priority_class):
    deployment, load, pair = build_table3(bench_platform, config, priority_class)
    try:
        benchmark.pedantic(pair, **TABLE3_OPTIONS)
    finally:
        load.stop()
        deployment.close()
    benchmark.extra_info["table"] = "3"
    benchmark.extra_info["platform"] = bench_platform
    benchmark.extra_info["configuration"] = config
    benchmark.extra_info["priority"] = priority_class
