"""Table 2 reproduction: response times per QoS configuration.

Paper rows (set+get pair, ms):

    config              servers   CORBA    RMI
    Privacy(DES)          1       45.12    8.57
    Passive Rep           3       11.17    7.01
    Active Rep            3        8.85    4.40
    + Vote                3        9.87    4.77
    + Total               3       14.63    8.14
    Active+Total          3       12.14    7.40
    + Privacy             3       73.16   13.63

Expected shapes: every QoS configuration is slower than the bare pipeline;
DES privacy is expensive (CPU-bound); adding Vote costs a little over
Active; adding Total costs more than Vote (extra ordering messages);
Active+Total+Privacy is the most expensive replicated configuration.
"""

import pytest

from conftest import BENCH_OPTIONS, TABLE2_CONFIGS, build_table2


@pytest.mark.parametrize("config", TABLE2_CONFIGS)
def test_table2(benchmark, bench_platform, config):
    deployment, pair = build_table2(bench_platform, config)
    try:
        benchmark.pedantic(pair, **BENCH_OPTIONS)
    finally:
        deployment.close()
    benchmark.extra_info["table"] = "2"
    benchmark.extra_info["platform"] = bench_platform
    benchmark.extra_info["configuration"] = config
