"""Figure 3 reproduction: the Cactus event causal graph, benchmarked.

Beyond the correctness check (tests/integration/test_event_causality.py),
this benchmark measures a fully *traced* invocation — the instrumented path
that produces the causal edges — and asserts the observed edge set equals
Figure 3's, so the published diagram is regenerated from a live run on
every benchmark invocation.
"""

import threading
import time

import pytest

from repro.apps.bank import BankAccount, bank_interface
from repro.core.events import (
    EV_INVOKE_FAILURE,
    EV_READY_TO_INVOKE,
    EV_READY_TO_SEND,
    EV_REQUEST_RETURNED,
    FIGURE3_CLIENT_EDGES,
    FIGURE3_SERVER_EDGES,
)
from repro.qos import QueuedSched
from repro.qos.timeliness import HIGH_PRIORITY, LOW_PRIORITY

from conftest import BENCH_OPTIONS, make_deployment


def identity_policy(request):
    return HIGH_PRIORITY if request.client_id.startswith("high") else LOW_PRIORITY


def test_figure3(benchmark, bench_platform):
    deployment = make_deployment(bench_platform)
    try:
        gate = threading.Event()
        entered = threading.Event()

        class SlowAccount(BankAccount):
            def owner(self):
                entered.set()
                gate.wait(10.0)
                return super().owner()

        skeletons = deployment.add_replicas(
            "acct",
            SlowAccount,
            bank_interface(),
            server_micro_protocols=lambda: [QueuedSched()],
            priority_policy=identity_policy,
        )
        server = skeletons[0].cactus_server
        high = deployment.client_stub("acct", bank_interface(), client_id="high-1")
        low = deployment.client_stub("acct", bank_interface(), client_id="low-1")
        client = low.cactus_client
        client.enable_tracing()
        server.enable_tracing()

        # One choreographed run exercising the queue/wakeup path.
        high_thread = threading.Thread(target=high.owner)
        high_thread.start()
        entered.wait(10.0)
        low_thread = threading.Thread(target=low.get_balance)
        low_thread.start()
        time.sleep(0.2)
        gate.set()
        high_thread.join(10.0)
        low_thread.join(10.0)

        # Benchmark the traced steady-state invocation.
        def traced_pair():
            low.set_balance(1.0)
            low.get_balance()

        benchmark.pedantic(traced_pair, **BENCH_OPTIONS)

        observed = client.trace_edges() | server.trace_edges()
        expected = (FIGURE3_CLIENT_EDGES | FIGURE3_SERVER_EDGES) - {
            (EV_READY_TO_SEND, EV_INVOKE_FAILURE)  # no failures in this run
        }
        # The queue-release backedge is QueuedSched's wakeup re-dispatch:
        # real, but not drawn in the figure (which shows the forward flow).
        release_backedge = {(EV_REQUEST_RETURNED, EV_READY_TO_INVOKE)}
        missing = expected - observed
        extra = observed - expected - release_backedge
        assert not missing, f"figure 3 edges never observed: {missing}"
        assert not extra, f"edges outside figure 3: {extra}"
        benchmark.extra_info["figure"] = "3"
        benchmark.extra_info["edges"] = sorted(map(str, observed))
    finally:
        deployment.close()
